//! Crash-safety integration tests for the engine ↔ journal pair: the
//! replayed journal must reconstruct *exactly* the state the live engine
//! holds, across every kind of transition the engine journals (votes,
//! remaps, phase clears, strikes, quarantine trips, recoveries,
//! duplicates), and a restarted engine must continue the decision stream
//! bit-identically to one that never died.

use std::path::PathBuf;
use symbio_allocator::WeightSortPolicy;
use symbio_machine::{ProcView, SigSnapshot, ThreadView};
use symbio_online::{JournalWriter, OnlineConfig, OnlineEngine, Recovery};

// ----------------------------------------------------------- helpers

fn thread_view(tid: usize, occ: f64, overlap: [f64; 2]) -> ThreadView {
    ThreadView {
        tid,
        pid: tid,
        name: format!("p{tid}"),
        occupancy: occ,
        symbiosis: vec![50.0, 50.0],
        overlap: overlap.to_vec(),
        last_occupancy: occ as u32,
        last_core: Some(tid % 2),
        samples: 3,
        filter_len: 256,
        l2_miss_rate: 0.1,
        l2_misses: 100,
        retired: 1000,
    }
}

fn synth_snap(group: &str, seq: u64, occ: [f64; 4], overlaps: [[f64; 2]; 4]) -> SigSnapshot {
    SigSnapshot {
        group: group.to_string(),
        seq,
        now_cycles: seq * 5_000_000,
        cores: 2,
        domains: vec![2],
        procs: (0..4)
            .map(|pid| ProcView {
                pid,
                name: format!("p{pid}"),
                threads: vec![thread_view(pid, occ[pid], overlaps[pid])],
            })
            .collect(),
    }
}

const PAIR_01_23: [[f64; 2]; 4] = [[0.0, 10.0], [10.0, 0.0], [0.0, 10.0], [10.0, 0.0]];
const PAIR_02_13: [[f64; 2]; 4] = [[10.0, 0.0], [0.0, 10.0], [10.0, 0.0], [0.0, 10.0]];
const OCC_A: [f64; 4] = [40.0, 30.0, 20.0, 10.0];
const OCC_B: [f64; 4] = [40.0, 20.0, 30.0, 10.0];

fn poisoned_snap(group: &str, seq: u64) -> SigSnapshot {
    let mut snap = synth_snap(group, seq, OCC_A, PAIR_01_23);
    snap.procs[0].threads[0].occupancy = f64::NAN;
    snap
}

/// A fresh journal path in the target-adjacent temp dir, unique per test.
fn journal_path(test: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("symbio-journal-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{test}.journal"))
}

fn engine(cfg: OnlineConfig) -> OnlineEngine {
    OnlineEngine::new(Box::new(WeightSortPolicy), cfg).unwrap()
}

/// A deterministic mixed-traffic trace exercising every journaled
/// transition: steady votes, a sustained shift (remap), invalid
/// snapshots through a quarantine trip and out the other side, and a
/// second independent group.
fn mixed_trace() -> Vec<(String, SigSnapshot, bool)> {
    let mut t: Vec<(String, SigSnapshot, bool)> = Vec::new();
    let mut push = |snap: SigSnapshot, ok: bool| t.push((snap.group.clone(), snap, ok));
    let mut seq = 0u64;
    // Steady pattern A, commits a mapping.
    for _ in 0..6 {
        push(synth_snap("g", seq, OCC_A, PAIR_01_23), true);
        seq += 1;
    }
    // Sustained shift to pattern B: eventually out-votes A and remaps.
    for _ in 0..8 {
        push(synth_snap("g", seq, OCC_B, PAIR_02_13), true);
        seq += 1;
    }
    // Three invalid snapshots trip the default quarantine threshold…
    for _ in 0..3 {
        push(poisoned_snap("g", seq), false);
        seq += 1;
    }
    // …then a clean streak recovers the group and refills the window.
    for _ in 0..7 {
        push(synth_snap("g", seq, OCC_A, PAIR_01_23), true);
        seq += 1;
    }
    // A second group interleaves an independent stream.
    for s in 0..5 {
        push(synth_snap("h", s, OCC_B, PAIR_02_13), true);
    }
    t
}

fn feed(engine: &mut OnlineEngine, trace: &[(String, SigSnapshot, bool)]) -> Vec<String> {
    trace
        .iter()
        .map(|(_, snap, ok)| {
            let result = engine.ingest(snap);
            assert_eq!(result.is_ok(), *ok, "seq {} of {}", snap.seq, snap.group);
            match result {
                Ok(d) => serde_json::to_string(&d).unwrap(),
                Err(e) => format!("err:{e}"),
            }
        })
        .collect()
}

// ------------------------------------------------------------- tests

#[test]
fn replayed_journal_reconstructs_the_live_engine_state_exactly() {
    let path = journal_path("roundtrip");
    let _ = std::fs::remove_file(&path);
    let cfg = OnlineConfig::default();
    let window = cfg.window;
    let mut live = engine(cfg).with_journal(JournalWriter::open(&path, 256).unwrap());
    feed(&mut live, &mixed_trace());
    assert!(live.journaling(), "journal must survive the whole trace");

    let recovery = Recovery::load(&path, window).unwrap();
    assert!(!recovery.truncated, "clean shutdown leaves no torn tail");
    assert!(recovery.frames > 0);
    assert_eq!(
        recovery.state,
        live.state(),
        "replay must reconstruct the live state bit-for-bit"
    );
    // The duplicate watermark survives: a replayed engine re-serves
    // retried epochs instead of double-tallying them.
    let mut revived = engine(OnlineConfig::default());
    revived.restore(&recovery.state);
    assert_eq!(revived.last_seq("g"), live.last_seq("g"));
    assert_eq!(
        revived.mapping("g").unwrap().partition_key(2),
        live.mapping("g").unwrap().partition_key(2)
    );
}

#[test]
fn restarted_engine_continues_the_decision_stream_identically() {
    let path = journal_path("restart");
    let _ = std::fs::remove_file(&path);
    let trace = mixed_trace();
    let split = trace.len() / 2; // mid-quarantine-adjacent: a hard spot

    // Reference: one engine, never interrupted.
    let mut reference = engine(OnlineConfig::default());
    let expect = feed(&mut reference, &trace);

    // First incarnation journals the first half, then "crashes" (drop).
    let mut first =
        engine(OnlineConfig::default()).with_journal(JournalWriter::open(&path, 256).unwrap());
    let got_first = feed(&mut first, &trace[..split]);
    drop(first);

    // Second incarnation recovers and serves the rest.
    let mut second = engine(OnlineConfig::default());
    let recovery = second.recover_from(&path).unwrap();
    assert!(recovery.frames > 0);
    let mut second = second.with_journal(JournalWriter::open(&path, 256).unwrap());
    let got_second = feed(&mut second, &trace[split..]);

    let got: Vec<String> = got_first.into_iter().chain(got_second).collect();
    assert_eq!(got, expect, "recovery must not perturb a single decision");
    assert_eq!(second.state(), reference.state());
    assert_eq!(
        second.counters().snapshot().recovery_replays,
        recovery.frames
    );
}

#[test]
fn snapshots_keep_replay_equivalent_while_bounding_the_tail() {
    let path = journal_path("snapshots");
    let _ = std::fs::remove_file(&path);
    let cfg = OnlineConfig::default();
    let window = cfg.window;
    // Snapshot every 8 records: the mixed trace embeds several full-state
    // snapshots, and replay must land on the same state regardless.
    let mut live = engine(cfg).with_journal(JournalWriter::open(&path, 8).unwrap());
    feed(&mut live, &mixed_trace());

    let text = std::fs::read_to_string(&path).unwrap();
    assert!(
        text.contains("\"Snapshot\""),
        "snapshot cadence of 8 must have embedded at least one snapshot"
    );
    let recovery = Recovery::load(&path, window).unwrap();
    assert_eq!(recovery.state, live.state());
}

#[test]
fn reopening_a_journal_resumes_appending_after_the_valid_prefix() {
    let path = journal_path("reopen");
    let _ = std::fs::remove_file(&path);
    let trace = mixed_trace();
    let split = trace.len() / 2;

    let mut first =
        engine(OnlineConfig::default()).with_journal(JournalWriter::open(&path, 256).unwrap());
    feed(&mut first, &trace[..split]);
    drop(first);

    // Simulate a torn final write: chop the file mid-frame.
    let mut bytes = std::fs::read(&path).unwrap();
    let keep = bytes.len() - 7;
    bytes.truncate(keep);
    std::fs::write(&path, &bytes).unwrap();

    // Reopen repairs the tail, and both the reopened writer's appends and
    // a later replay see one consistent, fully-valid journal.
    let mut second = engine(OnlineConfig::default());
    let recovery = second.recover_from(&path).unwrap();
    assert!(recovery.truncated, "the torn frame must be dropped");
    let mut second = second.with_journal(JournalWriter::open(&path, 256).unwrap());
    feed(&mut second, &trace[split..]);
    drop(second);

    let final_recovery = Recovery::load(&path, OnlineConfig::default().window).unwrap();
    assert!(
        !final_recovery.truncated,
        "repair + append must leave no unreachable frames"
    );
    // The torn frame was the last pre-split record: at most one epoch of
    // state is lost, and everything after the reopen is fully replayable —
    // the duplicate watermark lands on the final epoch of the trace.
    let g = final_recovery
        .state
        .groups
        .iter()
        .find(|g| g.name == "g")
        .unwrap();
    assert_eq!(g.last_seq, Some(23));
}

#[test]
fn exported_group_resumes_bit_identically_on_the_importing_engine() {
    let mut src = engine(OnlineConfig::default());
    feed(&mut src, &mixed_trace());

    // Fleet handoff: export "g" from the old owner, import it on the
    // new one. Every per-group observable must carry over.
    let record = src.export_group("g").expect("known group");
    let mut dst = engine(OnlineConfig::default());
    dst.import_group(&record);
    assert_eq!(dst.last_seq("g"), src.last_seq("g"));
    assert_eq!(dst.epochs("g"), src.epochs("g"));
    assert_eq!(dst.remaps("g"), src.remaps("g"));
    assert_eq!(
        dst.mapping("g").map(|m| m.partition_key(2)),
        src.mapping("g").map(|m| m.partition_key(2))
    );

    // Continuing the stream on the importer is bit-identical to never
    // having moved it.
    for seq in 30..40 {
        let snap = synth_snap("g", seq, OCC_A, PAIR_01_23);
        let stayed = src.ingest(&snap).unwrap();
        let moved = dst.ingest(&snap).unwrap();
        assert_eq!(
            serde_json::to_string(&stayed).unwrap(),
            serde_json::to_string(&moved).unwrap(),
            "seq {seq} diverged after handoff"
        );
    }

    // The old owner drops its copy once the handoff lands; unknown
    // groups export as None and evict as false.
    assert!(src.evict_group("g"));
    assert!(!src.evict_group("g"));
    assert!(src.export_group("g").is_none());
}
