//! Section 3.3.4 — two-phase allocation for multi-threaded applications.
//!
//! Threads of one process share data, so their mutual signature
//! "interference" is enormous yet constructive; feeding it to the MIN-CUT
//! directly would wrongly scatter them. The paper's fix:
//!
//! 1. **Phase 1** — consider each multi-threaded process in isolation and
//!    run occupancy weight-sorting over its threads to decide which of its
//!    threads will share a core (subgroups of ⌈T/N⌉);
//! 2. **Phase 2** — run the weighted interference graph over *all* threads,
//!    but pin intra-process edges: a very large weight for same-subgroup
//!    pairs (MIN-CUT keeps them together) and zero for different-subgroup
//!    pairs (MIN-CUT is free to separate them), as in Figure 8(b).

use crate::graph::{InterferenceGraph, InterferenceMetric};
use crate::partition::{partition_k, PartitionMethod};
use crate::policy::{flat_threads, mapping_from_groups, AllocationPolicy};
use symbio_machine::{Mapping, ProcView};

/// Pin weight for same-subgroup thread pairs ("a very large value").
const PIN: f64 = 1e12;

/// The two-phase multi-threaded allocation algorithm.
#[derive(Debug, Clone, Copy)]
pub struct TwoPhasePolicy {
    /// Partitioning algorithm for the phase-2 MIN-CUT.
    pub method: PartitionMethod,
    /// Interference measurement feeding the phase-2 graph.
    pub metric: InterferenceMetric,
}

impl Default for TwoPhasePolicy {
    fn default() -> Self {
        TwoPhasePolicy {
            method: PartitionMethod::Auto,
            metric: InterferenceMetric::Overlap,
        }
    }
}

impl AllocationPolicy for TwoPhasePolicy {
    fn name(&self) -> &'static str {
        "two-phase"
    }

    fn allocate(&mut self, views: &[ProcView], cores: usize) -> Mapping {
        let threads = flat_threads(views);
        if threads.len() <= cores {
            let groups: Vec<usize> = (0..threads.len()).collect();
            return mapping_from_groups(&threads, &groups, cores);
        }

        // Phase 1: per-process weight sort → subgroup label per thread.
        // subgroup[i] = Some((pid, subgroup idx)) for multi-threaded procs.
        let mut subgroup: Vec<Option<(usize, usize)>> = vec![None; threads.len()];
        for proc in views {
            if proc.threads.len() < 2 {
                continue;
            }
            let t = proc.threads.len();
            let sub_size = t.div_ceil(cores);
            let mut order: Vec<usize> = (0..t).collect();
            order.sort_by(|&a, &b| {
                proc.threads[b]
                    .occupancy
                    .partial_cmp(&proc.threads[a].occupancy)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            for (rank, &k) in order.iter().enumerate() {
                let tid = proc.threads[k].tid;
                let pos = threads.iter().position(|th| th.tid == tid).expect("tid");
                subgroup[pos] = Some((proc.pid, rank / sub_size));
            }
        }

        // Phase 2: weighted interference graph with pinned edges.
        let mut graph = InterferenceGraph::weighted(&threads, self.metric);
        for a in 0..threads.len() {
            for b in (a + 1)..threads.len() {
                match (subgroup[a], subgroup[b]) {
                    (Some((pa, ga)), Some((pb, gb))) if pa == pb => {
                        let w = if ga == gb { PIN } else { 0.0 };
                        graph.weights_mut().set(a, b, w);
                    }
                    _ => {}
                }
            }
        }
        let groups = partition_k(graph.weights(), cores.next_power_of_two(), self.method);
        mapping_from_groups(&threads, &groups, cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbio_machine::ThreadView;

    fn view(tid: usize, pid: usize, occupancy: f64, symbiosis: Vec<f64>) -> ThreadView {
        let overlap = symbiosis.iter().map(|s| (100.0 - s).max(0.0)).collect();
        ThreadView {
            tid,
            pid,
            name: format!("p{pid}"),
            occupancy,
            symbiosis,
            overlap,
            last_occupancy: occupancy as u32,
            last_core: Some(tid % 2),
            samples: 1,
            filter_len: 4096,
            l2_miss_rate: 0.1,
            l2_misses: 100,
            retired: 0,
        }
    }

    /// Two 4-thread apps on 2 cores — the Figure 8 scenario.
    fn two_apps() -> Vec<ProcView> {
        let app = |pid: usize, base_tid: usize, occ: &[f64]| ProcView {
            pid,
            name: format!("app{pid}"),
            threads: (0..4)
                .map(|i| view(base_tid + i, pid, occ[i], vec![50.0, 50.0]))
                .collect(),
        };
        vec![
            app(0, 0, &[100.0, 90.0, 10.0, 5.0]),
            app(1, 4, &[80.0, 70.0, 20.0, 15.0]),
        ]
    }

    #[test]
    fn phase1_groups_heavy_threads_within_process() {
        let views = two_apps();
        let m = TwoPhasePolicy::default().allocate(&views, 2);
        // App 0: threads 0,1 (heavy) together; threads 2,3 (light) together.
        assert_eq!(m.core_of(0), m.core_of(1));
        assert_eq!(m.core_of(2), m.core_of(3));
        assert_ne!(m.core_of(0), m.core_of(2), "subgroups on different cores");
        // App 1: threads 4,5 heavy together; 6,7 light together.
        assert_eq!(m.core_of(4), m.core_of(5));
        assert_eq!(m.core_of(6), m.core_of(7));
        assert_ne!(m.core_of(4), m.core_of(6));
    }

    #[test]
    fn balanced_across_cores() {
        let views = two_apps();
        let m = TwoPhasePolicy::default().allocate(&views, 2);
        assert_eq!(m.group_sizes(2), vec![4, 4]);
    }

    #[test]
    fn single_threaded_processes_pass_through() {
        // Mixed workload: one 2-thread app + two single-threaded procs.
        let views = vec![
            ProcView {
                pid: 0,
                name: "app".into(),
                threads: vec![
                    view(0, 0, 100.0, vec![50.0, 50.0]),
                    view(1, 0, 90.0, vec![50.0, 50.0]),
                ],
            },
            ProcView {
                pid: 1,
                name: "s1".into(),
                threads: vec![view(2, 1, 10.0, vec![50.0, 50.0])],
            },
            ProcView {
                pid: 2,
                name: "s2".into(),
                threads: vec![view(3, 2, 10.0, vec![50.0, 50.0])],
            },
        ];
        let m = TwoPhasePolicy::default().allocate(&views, 2);
        assert_eq!(m.len(), 4);
        assert_eq!(m.group_sizes(2), vec![2, 2]);
        // The app's 2 threads, with cores=2, split into 2 subgroups of 1:
        // pinning forces them APART (they share data but phase 1 decided
        // subgroup-per-core; with T == cores each subgroup has one thread).
        assert_ne!(m.core_of(0), m.core_of(1));
    }

    #[test]
    fn pinning_overrides_raw_interference() {
        // Give intra-process threads absurdly high raw interference (they
        // share data, so symbiosis is ~0): without pinning the cut would
        // keep ALL of them together, breaking balance across apps.
        let app = |pid: usize, base: usize| ProcView {
            pid,
            name: format!("app{pid}"),
            threads: (0..4)
                .map(|i| view(base + i, pid, 50.0, vec![0.1, 0.1]))
                .collect(),
        };
        let views = vec![app(0, 0), app(1, 4)];
        let m = TwoPhasePolicy::default().allocate(&views, 2);
        assert_eq!(m.group_sizes(2), vec![4, 4]);
        // Each app contributes one subgroup per core.
        for pid_base in [0, 4] {
            let cores: std::collections::HashSet<_> =
                (0..4).map(|i| m.core_of(pid_base + i)).collect();
            assert_eq!(cores.len(), 2, "app must span both cores");
        }
    }
}
