//! Two-level allocation for multi-domain machines.
//!
//! On a machine with several cache domains (each its own shared L2 and
//! signature bank, see [`Topology`]), allocation decomposes naturally:
//!
//! 1. **Across domains** — processes that destroy each other's working
//!    sets should not even share an L2, so the interference graph is first
//!    `partition_k`'d into one group per domain (balanced MIN-CUT, the
//!    same machinery as Section 3.3.2's per-core step);
//! 2. **Within each domain** — the surviving contention is the classic
//!    single-L2 problem, so any existing [`AllocationPolicy`] runs
//!    unchanged on a *localized* view of the domain's members.
//!
//! Signature vectors are **domain-local** (a thread's symbiosis/overlap
//! entries index the cores of the domain it last ran in), so the
//! cross-domain graph only carries measured edges between threads whose
//! `last_core`s share a domain; cross-domain pairs are unmeasured and fall
//! back to the metric's missing-data value (the `2.0` interference clamp,
//! or zero contested capacity). Re-invocation over epochs refines this the
//! same way the single-L2 policies recover from a cold start.
//!
//! On a single-domain topology the policy is a transparent wrapper: it
//! delegates straight to the inner policy (see
//! `single_domain_is_transparent` and the proptest equivalence suite in
//! `tests/domain_equivalence.rs`).

use crate::graph::InterferenceMetric;
use crate::matrix::SymMatrix;
use crate::partition::{partition_k, PartitionMethod};
use crate::policy::{flat_threads, AllocationPolicy};
use symbio_machine::{Mapping, ProcView, ThreadView, Topology};

/// Two-level domain-aware allocation policy.
///
/// Wraps any inner [`AllocationPolicy`]; the inner policy sees each domain
/// as a stand-alone machine (`cores` = the domain's core count, thread ids
/// renumbered contiguously, `last_core` localized).
pub struct DomainAwarePolicy {
    topology: Topology,
    inner: Box<dyn AllocationPolicy + Send>,
    /// Partitioning algorithm for the cross-domain split.
    pub method: PartitionMethod,
    /// Interference measurement feeding the cross-domain graph.
    pub metric: InterferenceMetric,
}

impl std::fmt::Debug for DomainAwarePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DomainAwarePolicy")
            .field("topology", &self.topology)
            .field("inner", &self.inner.name())
            .field("method", &self.method)
            .field("metric", &self.metric)
            .finish()
    }
}

impl DomainAwarePolicy {
    /// Wrap `inner` for `topology`.
    pub fn new(topology: Topology, inner: Box<dyn AllocationPolicy + Send>) -> Self {
        DomainAwarePolicy {
            topology,
            inner,
            method: PartitionMethod::Auto,
            metric: InterferenceMetric::Overlap,
        }
    }

    /// The default stack: weighted interference graph inside each domain
    /// (the paper's best performer), occupancy-weighted overlap across.
    pub fn weighted_ig(topology: Topology) -> Self {
        Self::new(
            topology,
            Box::new(crate::policy::WeightedInterferenceGraphPolicy::default()),
        )
    }

    /// The wrapped topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Build the cross-domain consolidated interference graph. Mirrors
    /// [`crate::graph::InterferenceGraph`] (Figure 7 consolidation,
    /// occupancy-weighted) except that `last_core` is global while the
    /// signature vectors are domain-local, so the per-direction term is
    /// measured only when source and target last ran in the same domain.
    fn cross_domain_graph(&self, threads: &[&ThreadView]) -> SymMatrix {
        let n = threads.len();
        let mut w = SymMatrix::new(n);
        for a in 0..n {
            let core_a = threads[a].last_core.unwrap_or(0);
            let dom_a = self
                .topology
                .domain_of(core_a.min(self.topology.cores() - 1));
            for b in 0..n {
                if a == b {
                    continue;
                }
                let core_b = threads[b].last_core.unwrap_or(0);
                let dom_b = self
                    .topology
                    .domain_of(core_b.min(self.topology.cores() - 1));
                let edge = if dom_a == dom_b {
                    let local = self.topology.local_core(core_b);
                    symbio_eval::signature_edge(self.metric, threads[a], local)
                } else {
                    // Unmeasured cross-domain pair: the missing-data value
                    // of the metric (symbiosis 0 clamps to 2.0; no overlap
                    // evidence means no contested capacity).
                    symbio_eval::missing_edge(self.metric)
                };
                w.add(a, b, edge * threads[a].occupancy);
            }
        }
        w
    }

    /// Assign each thread (by node position) a domain index. Power-of-two
    /// domain counts use hierarchical MIN-CUT; other counts fall back to a
    /// deterministic greedy fill (heaviest thread first into the least
    /// loaded domain, capacity proportional to core count).
    fn split_across_domains(&self, threads: &[&ThreadView]) -> Vec<usize> {
        let domains = self.topology.domains();
        if domains.is_power_of_two() {
            let w = self.cross_domain_graph(threads);
            return partition_k(&w, domains, self.method);
        }
        let n = threads.len();
        let total_cores = self.topology.cores();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            threads[b]
                .occupancy
                .partial_cmp(&threads[a].occupancy)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b)) // fixed tie-break: node order
        });
        let mut load = vec![0usize; domains];
        let mut assignment = vec![0usize; n];
        for &i in &order {
            // Least relative load; ties go to the lowest domain index.
            let d = (0..domains)
                .min_by(|&x, &y| {
                    let lx = load[x] * total_cores / self.topology.domain(x).cores.max(1);
                    let ly = load[y] * total_cores / self.topology.domain(y).cores.max(1);
                    lx.cmp(&ly).then(x.cmp(&y))
                })
                .expect("at least one domain");
            assignment[i] = d;
            load[d] += 1;
        }
        assignment
    }
}

/// Rebuild `ProcView`s for one domain's member threads: tids renumbered
/// contiguously by global-tid rank, `last_core` localized to the domain
/// (or dropped when the thread last ran elsewhere — its history is
/// meaningless inside this domain).
fn localize_views(
    topology: Topology,
    d: usize,
    members: &[&ThreadView],
) -> (Vec<ProcView>, Vec<usize>) {
    let range = topology.core_range(d);
    let mut local_tids = Vec::with_capacity(members.len());
    let mut procs: Vec<ProcView> = Vec::new();
    for (rank, t) in members.iter().enumerate() {
        local_tids.push(t.tid);
        let mut lt = (*t).clone();
        lt.tid = rank;
        lt.last_core = t
            .last_core
            .filter(|c| range.contains(c))
            .map(|c| topology.local_core(c));
        match procs.iter_mut().find(|p| p.pid == lt.pid) {
            Some(p) => p.threads.push(lt),
            None => procs.push(ProcView {
                pid: lt.pid,
                name: lt.name.clone(),
                threads: vec![lt],
            }),
        }
    }
    (procs, local_tids)
}

impl AllocationPolicy for DomainAwarePolicy {
    fn name(&self) -> &'static str {
        "domain-aware"
    }

    fn allocate(&mut self, views: &[ProcView], cores: usize) -> Mapping {
        // A single domain, or a caller whose core count disagrees with the
        // wrapped topology, is the classic single-L2 problem: transparent.
        if self.topology.is_single() || self.topology.cores() != cores {
            return self.inner.allocate(views, cores);
        }
        let threads = flat_threads(views);
        if threads.is_empty() {
            return Mapping::new(Vec::new());
        }
        let assignment = self.split_across_domains(&threads);
        let mut cores_by_tid = vec![0usize; threads.len()];
        for d in 0..self.topology.domains() {
            let members: Vec<&ThreadView> = threads
                .iter()
                .enumerate()
                .filter(|&(i, _)| assignment[i] == d)
                .map(|(_, t)| *t)
                .collect();
            if members.is_empty() {
                continue;
            }
            let (local_views, local_tids) = localize_views(self.topology, d, &members);
            let dcores = self.topology.domain(d).cores;
            let local = self.inner.allocate(&local_views, dcores);
            let start = self.topology.core_start(d);
            for (rank, &tid) in local_tids.iter().enumerate() {
                cores_by_tid[tid] = start + local.core_of(rank) % dcores;
            }
        }
        Mapping::new(cores_by_tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{WeightSortPolicy, WeightedInterferenceGraphPolicy};

    /// A thread whose signature vectors are local to a `dcores`-core
    /// domain.
    fn view(tid: usize, occupancy: f64, overlap: Vec<f64>, last_core: usize) -> ProcView {
        let symbiosis = overlap.iter().map(|o| (100.0 - o).max(0.0)).collect();
        ProcView {
            pid: tid,
            name: format!("p{tid}"),
            threads: vec![ThreadView {
                tid,
                pid: tid,
                name: format!("p{tid}"),
                occupancy,
                symbiosis,
                overlap,
                last_occupancy: occupancy as u32,
                last_core: Some(last_core),
                samples: 1,
                filter_len: 4096,
                l2_miss_rate: 0.1,
                l2_misses: 100,
                retired: 0,
            }],
        }
    }

    #[test]
    fn single_domain_is_transparent() {
        let views: Vec<ProcView> = vec![
            view(0, 100.0, vec![10.0, 20.0], 0),
            view(1, 5.0, vec![30.0, 5.0], 1),
            view(2, 90.0, vec![50.0, 1.0], 0),
            view(3, 1.0, vec![2.0, 2.0], 1),
        ];
        let mut wrapped =
            DomainAwarePolicy::new(Topology::shared_l2(2), Box::new(WeightSortPolicy));
        let mut bare = WeightSortPolicy;
        assert_eq!(wrapped.allocate(&views, 2), bare.allocate(&views, 2));
    }

    /// Known-optimum 2-domain MIN-CUT fixture: two tight interference
    /// pairs, one pair per current domain. Keeping each pair inside one
    /// domain internalises all measured weight (cut 0); every other
    /// balanced split cuts a heavy edge. With one core per domain the
    /// final mapping is forced, so the assertion pins the optimum exactly.
    #[test]
    fn two_domain_min_cut_fixture() {
        let topo = Topology::uniform(2, 1);
        // Threads 0, 1 last ran in domain 0 (core 0); 2, 3 in domain 1.
        // Domain-local vectors have one entry (one core per domain).
        let views = vec![
            view(0, 10.0, vec![90.0], 0),
            view(1, 10.0, vec![90.0], 0),
            view(2, 10.0, vec![80.0], 1),
            view(3, 10.0, vec![80.0], 1),
        ];
        let mut p = DomainAwarePolicy::weighted_ig(topo);
        let m = p.allocate(&views, 2);
        // Pairs stay together; node 0's side keeps domain 0 (tie-break
        // contract of `bisect`).
        assert_eq!(m.core_of(0), 0);
        assert_eq!(m.core_of(1), 0);
        assert_eq!(m.core_of(2), 1);
        assert_eq!(m.core_of(3), 1);
    }

    #[test]
    fn two_by_two_respects_domain_boundaries() {
        let topo = Topology::uniform(2, 2);
        // Four heavy mutual interferers measured in domain 0, four in
        // domain 1; the cross split must keep each clique whole, then the
        // inner policy spreads 2+2 inside each domain.
        let mut views = Vec::new();
        for tid in 0..4 {
            views.push(view(tid, 50.0, vec![70.0, 70.0], tid % 2));
        }
        for tid in 4..8 {
            views.push(view(tid, 50.0, vec![60.0, 60.0], 2 + tid % 2));
        }
        let mut p = DomainAwarePolicy::weighted_ig(topo);
        let m = p.allocate(&views, 4);
        let dom = |c: usize| topo.domain_of(c);
        let d0 = dom(m.core_of(0));
        for tid in 1..4 {
            assert_eq!(dom(m.core_of(tid)), d0, "clique A split across domains");
        }
        let d1 = dom(m.core_of(4));
        for tid in 5..8 {
            assert_eq!(dom(m.core_of(tid)), d1, "clique B split across domains");
        }
        assert_ne!(d0, d1);
        assert_eq!(m.group_sizes(4), vec![2, 2, 2, 2]);
    }

    #[test]
    fn non_power_of_two_domains_fill_greedily() {
        let topo = Topology::uniform(3, 1);
        let views: Vec<ProcView> = (0..6)
            .map(|tid| view(tid, (60 - tid * 10) as f64, vec![50.0], tid % 3))
            .collect();
        let mut p = DomainAwarePolicy::weighted_ig(topo);
        let m = p.allocate(&views, 3);
        assert_eq!(m.group_sizes(3), vec![2, 2, 2], "balanced greedy fill");
        // Deterministic: the same inputs always produce the same mapping.
        let mut q = DomainAwarePolicy::weighted_ig(topo);
        assert_eq!(q.allocate(&views, 3), m);
    }

    #[test]
    fn mismatched_core_count_delegates() {
        let views = vec![view(0, 1.0, vec![1.0], 0), view(1, 2.0, vec![1.0], 1)];
        let mut p = DomainAwarePolicy::new(
            Topology::uniform(2, 2), // 4 cores
            Box::new(WeightedInterferenceGraphPolicy::default()),
        );
        let mut bare = WeightedInterferenceGraphPolicy::default();
        // Caller asks for 2 cores: the topology does not apply; fall back.
        assert_eq!(p.allocate(&views, 2), bare.allocate(&views, 2));
        assert_eq!(p.name(), "domain-aware");
    }
}
