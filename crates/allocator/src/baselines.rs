//! Baseline schedulers the paper's algorithms are measured against.

use crate::policy::{flat_threads, sort_and_group, AllocationPolicy};
use symbio_machine::{Mapping, ProcView};

/// The OS default: round-robin placement in arrival (tid) order — the
/// "default schedule with which the processes began execution" (Section
/// 5.3).
#[derive(Debug, Default, Clone, Copy)]
pub struct DefaultPolicy;

impl AllocationPolicy for DefaultPolicy {
    fn name(&self) -> &'static str {
        "default"
    }

    fn allocate(&mut self, views: &[ProcView], cores: usize) -> Mapping {
        let threads = flat_threads(views);
        Mapping::round_robin(threads.len(), cores)
    }
}

/// Uniformly random balanced placement (seeded, deterministic) — the
/// "no information" floor.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    state: u64,
}

impl RandomPolicy {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        RandomPolicy { state: seed | 1 }
    }

    fn next(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }
}

impl AllocationPolicy for RandomPolicy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn allocate(&mut self, views: &[ProcView], cores: usize) -> Mapping {
        let threads = flat_threads(views);
        let p = threads.len();
        let group_size = p.div_ceil(cores);
        // Random permutation, then consecutive grouping.
        let mut order: Vec<usize> = (0..p).collect();
        for i in (1..p).rev() {
            let j = (self.next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut cores_by_tid = vec![0usize; p];
        for (rank, &i) in order.iter().enumerate() {
            cores_by_tid[threads[i].tid] = rank / group_size;
        }
        Mapping::new(cores_by_tid)
    }
}

/// Cache-affinity scheduling: keep every thread where it last ran (the
/// history-based heuristic of the prior work in Section 2.2). Falls back to
/// round-robin for never-run threads, and rebalances only if a core is
/// overloaded beyond ⌈P/N⌉.
#[derive(Debug, Default, Clone, Copy)]
pub struct AffinityPolicy;

impl AllocationPolicy for AffinityPolicy {
    fn name(&self) -> &'static str {
        "affinity"
    }

    fn allocate(&mut self, views: &[ProcView], cores: usize) -> Mapping {
        let threads = flat_threads(views);
        let p = threads.len();
        let cap = p.div_ceil(cores);
        let mut load = vec![0usize; cores];
        let mut cores_by_tid = vec![usize::MAX; p];
        // First pass: honour last_core while capacity allows.
        for t in &threads {
            if let Some(c) = t.last_core {
                if c < cores && load[c] < cap {
                    cores_by_tid[t.tid] = c;
                    load[c] += 1;
                }
            }
        }
        // Second pass: place the rest on the least-loaded cores.
        for t in &threads {
            if cores_by_tid[t.tid] == usize::MAX {
                let c = (0..cores).min_by_key(|&c| load[c]).expect("cores >= 1");
                cores_by_tid[t.tid] = c;
                load[c] += 1;
            }
        }
        Mapping::new(cores_by_tid)
    }
}

/// Miss-rate sorting: identical grouping logic to the paper's weight
/// sorting, but keyed on the L2 **miss rate** perf counter instead of the
/// footprint signature — the event-counter approach of the related work
/// ([9], [40]) that Section 2.2 argues cannot see footprints. Comparing
/// this against [`crate::WeightSortPolicy`] isolates the value of the
/// signature itself.
#[derive(Debug, Default, Clone, Copy)]
pub struct MissRateSortPolicy;

impl AllocationPolicy for MissRateSortPolicy {
    fn name(&self) -> &'static str {
        "miss-rate-sort"
    }

    fn allocate(&mut self, views: &[ProcView], cores: usize) -> Mapping {
        let threads = flat_threads(views);
        sort_and_group(&threads, cores, |t| t.l2_miss_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbio_machine::ThreadView;

    fn view(tid: usize, miss_rate: f64, last_core: Option<usize>) -> ProcView {
        ProcView {
            pid: tid,
            name: format!("p{tid}"),
            threads: vec![ThreadView {
                tid,
                pid: tid,
                name: format!("p{tid}"),
                occupancy: 1.0,
                symbiosis: vec![1.0, 1.0],
                overlap: vec![1.0, 1.0],
                last_occupancy: 1,
                last_core,
                samples: 1,
                filter_len: 64,
                l2_miss_rate: miss_rate,
                l2_misses: 0,
                retired: 0,
            }],
        }
    }

    #[test]
    fn default_is_round_robin() {
        let views: Vec<ProcView> = (0..4).map(|i| view(i, 0.1, None)).collect();
        let m = DefaultPolicy.allocate(&views, 2);
        assert_eq!(m, Mapping::round_robin(4, 2));
    }

    #[test]
    fn random_is_balanced_and_deterministic() {
        let views: Vec<ProcView> = (0..6).map(|i| view(i, 0.1, None)).collect();
        let a = RandomPolicy::new(9).allocate(&views, 2);
        let b = RandomPolicy::new(9).allocate(&views, 2);
        assert_eq!(a, b);
        assert_eq!(a.group_sizes(2), vec![3, 3]);
    }

    #[test]
    fn random_differs_across_seeds() {
        let views: Vec<ProcView> = (0..8).map(|i| view(i, 0.1, None)).collect();
        let a = RandomPolicy::new(1).allocate(&views, 2);
        let b = RandomPolicy::new(2).allocate(&views, 2);
        assert_ne!(a.partition_key(2), b.partition_key(2));
    }

    #[test]
    fn affinity_keeps_last_core() {
        let views = vec![
            view(0, 0.1, Some(1)),
            view(1, 0.1, Some(0)),
            view(2, 0.1, Some(1)),
            view(3, 0.1, None),
        ];
        let m = AffinityPolicy.allocate(&views, 2);
        assert_eq!(m.core_of(0), 1);
        assert_eq!(m.core_of(1), 0);
        assert_eq!(m.core_of(2), 1);
        // Thread 3 fills the least-loaded core (core 0 has 1, core 1 full).
        assert_eq!(m.core_of(3), 0);
        assert_eq!(m.group_sizes(2), vec![2, 2]);
    }

    #[test]
    fn affinity_respects_capacity() {
        // Everyone claims core 0; only ⌈4/2⌉ = 2 may stay.
        let views: Vec<ProcView> = (0..4).map(|i| view(i, 0.1, Some(0))).collect();
        let m = AffinityPolicy.allocate(&views, 2);
        assert_eq!(m.group_sizes(2), vec![2, 2]);
    }

    #[test]
    fn miss_rate_sort_groups_by_counter() {
        let views = vec![
            view(0, 0.9, None),
            view(1, 0.05, None),
            view(2, 0.8, None),
            view(3, 0.1, None),
        ];
        let m = MissRateSortPolicy.allocate(&views, 2);
        assert_eq!(m.core_of(0), m.core_of(2), "high-miss pair co-located");
        assert_eq!(m.core_of(1), m.core_of(3));
    }
}
