//! Balanced graph partitioning (the MIN-CUT step of Sections 3.3.2–3.3.3).
//!
//! The paper's formulation: split the nodes into equal groups so that the
//! weight of edges *between* groups is minimised (equivalently, intra-group
//! interference is maximised, so mutually destructive processes share a
//! core). Balanced MIN-CUT is NP-hard in general; the paper uses an SDP
//! approximation. At the paper's sizes ("tens of nodes") exhaustive
//! enumeration of balanced bisections is exact and fast —
//! C(12,6)/2 = 462 cuts for a 12-node graph — so that is the default, with
//! Kernighan–Lin and randomised local search provided for larger graphs and
//! for ablation benches.

use crate::matrix::SymMatrix;
use serde::{Deserialize, Serialize};

/// Which bisection algorithm to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PartitionMethod {
    /// Exact: enumerate all balanced bisections (n ≤ 24 recommended).
    Exhaustive,
    /// Kernighan–Lin pairwise-swap refinement from a deterministic start.
    KernighanLin,
    /// Randomised swap hill-climbing with restarts (seeded).
    LocalSearch {
        /// Number of random restarts.
        restarts: u32,
        /// RNG seed.
        seed: u64,
    },
    /// Exhaustive when it is cheap, Kernighan–Lin otherwise.
    Auto,
}

/// Result of a bisection: `side[i]` says which half node `i` landed in,
/// and `cut` is the crossing weight.
#[derive(Debug, Clone, PartialEq)]
pub struct Bisection {
    /// Side assignment (`false` = group 0).
    pub side: Vec<bool>,
    /// Total weight crossing the cut.
    pub cut: f64,
}

/// Bisect `w` into two groups of ⌈n/2⌉ and ⌊n/2⌋ nodes minimising the cut.
///
/// **Tie-break contract**: among equal-cut bisections the result is fully
/// determined, never dependent on float summation order or iteration over
/// a hash container. `Exhaustive` pins node 0 to side `false` and walks
/// the `true`-side combinations in lexicographic order, keeping only
/// *strict* improvements — so ties resolve to the lexicographically
/// smallest `true`-side index set. `KernighanLin` scans candidate swap
/// pairs in ascending `(a, b)` order, again keeping only strict gains.
/// `LocalSearch` is fully determined by its seed. Hierarchical callers
/// ([`partition_k`]) inherit this, which is what makes cross-domain
/// placement reproducible on graphs full of equal weights (e.g. symmetric
/// synthetic mixes).
pub fn bisect(w: &SymMatrix, method: PartitionMethod) -> Bisection {
    let n = w.n();
    assert!(n >= 2, "need at least two nodes to bisect");
    match method {
        PartitionMethod::Exhaustive => exhaustive(w),
        PartitionMethod::KernighanLin => kernighan_lin(w),
        PartitionMethod::LocalSearch { restarts, seed } => local_search(w, restarts, seed),
        PartitionMethod::Auto => {
            if n <= 24 {
                exhaustive(w)
            } else {
                kernighan_lin(w)
            }
        }
    }
}

/// Partition into `k` balanced groups by hierarchical bisection
/// (`k` must be a power of two, as in the paper's extension to more cores).
/// Returns the group index of each node.
///
/// Deterministic under ties: each level splits with [`bisect`] (whose
/// tie-break order is fixed — see its docs), the `false` side keeps the
/// lower group indices and recurses first, and subgraph nodes keep their
/// relative order. Two calls with the same matrix, `k` and method always
/// return the same labelling.
pub fn partition_k(w: &SymMatrix, k: usize, method: PartitionMethod) -> Vec<usize> {
    assert!(k >= 1 && k.is_power_of_two(), "k must be a power of two");
    let mut groups = vec![0usize; w.n()];
    let all: Vec<usize> = (0..w.n()).collect();
    split_rec(w, &all, k, 0, method, &mut groups);
    groups
}

fn split_rec(
    w: &SymMatrix,
    nodes: &[usize],
    k: usize,
    base: usize,
    method: PartitionMethod,
    out: &mut Vec<usize>,
) {
    if k == 1 || nodes.len() <= 1 {
        for &n in nodes {
            out[n] = base;
        }
        return;
    }
    // Build the subgraph over `nodes`.
    let m = nodes.len();
    let mut sub = SymMatrix::new(m);
    for i in 0..m {
        for j in (i + 1)..m {
            sub.set(i, j, w.get(nodes[i], nodes[j]));
        }
    }
    let bi = bisect(&sub, method);
    // `filter` preserves the caller's node order, so the recursion sees the
    // same relative order at every level — part of the tie-break contract.
    let left: Vec<usize> = (0..m).filter(|&i| !bi.side[i]).map(|i| nodes[i]).collect();
    let right: Vec<usize> = (0..m).filter(|&i| bi.side[i]).map(|i| nodes[i]).collect();
    split_rec(w, &left, k / 2, base, method, out);
    split_rec(w, &right, k / 2, base + k / 2, method, out);
}

/// Exact enumeration. Fixes node 0 on side `false` to halve the space, and
/// enumerates all subsets of the remaining nodes with ⌊n/2⌋ elements for
/// the `true` side.
fn exhaustive(w: &SymMatrix) -> Bisection {
    let n = w.n();
    let half = n / 2; // size of the `true` side
    let mut best: Option<Bisection> = None;
    // Iterate over bitmasks of the n-1 non-fixed nodes with `half` bits.
    let mut side = vec![false; n];
    let mut comb: Vec<usize> = (0..half).collect(); // indices into 1..n
    loop {
        side.iter_mut().for_each(|s| *s = false);
        for &c in &comb {
            side[c + 1] = true;
        }
        let cut = w.cut_weight(&side);
        if best.as_ref().is_none_or(|b| cut < b.cut) {
            best = Some(Bisection {
                side: side.clone(),
                cut,
            });
        }
        // Next combination of size `half` from 0..n-1 (mapped to nodes 1..n).
        if half == 0 {
            break;
        }
        let mut i = half;
        loop {
            if i == 0 {
                return best.expect("at least one bisection");
            }
            i -= 1;
            if comb[i] != i + (n - 1) - half {
                comb[i] += 1;
                for j in (i + 1)..half {
                    comb[j] = comb[j - 1] + 1;
                }
                break;
            }
        }
    }
    best.expect("at least one bisection")
}

/// Classic Kernighan–Lin refinement from the sequential split.
fn kernighan_lin(w: &SymMatrix) -> Bisection {
    let n = w.n();
    let half = n / 2;
    let mut side: Vec<bool> = (0..n).map(|i| i >= n - half).collect();

    // D[i] = external - internal cost of node i under the current split.
    let d = |side: &[bool], i: usize| -> f64 {
        let mut ext = 0.0;
        let mut int = 0.0;
        for j in 0..n {
            if j == i {
                continue;
            }
            if side[j] != side[i] {
                ext += w.get(i, j);
            } else {
                int += w.get(i, j);
            }
        }
        ext - int
    };

    for _pass in 0..n {
        // Greedy sequence of best swaps, then keep the best prefix.
        let mut work = side.clone();
        let mut locked = vec![false; n];
        let mut gains: Vec<(f64, usize, usize)> = Vec::new();
        for _ in 0..half {
            let mut best: Option<(f64, usize, usize)> = None;
            for a in 0..n {
                if locked[a] || work[a] {
                    continue;
                }
                for b in 0..n {
                    if locked[b] || !work[b] {
                        continue;
                    }
                    let gain = d(&work, a) + d(&work, b) - 2.0 * w.get(a, b);
                    if best.is_none_or(|(g, _, _)| gain > g) {
                        best = Some((gain, a, b));
                    }
                }
            }
            let Some((g, a, b)) = best else { break };
            work[a] = true;
            work[b] = false;
            locked[a] = true;
            locked[b] = true;
            gains.push((g, a, b));
        }
        // Best prefix of cumulative gains.
        let mut best_sum = 0.0;
        let mut cum = 0.0;
        let mut best_k = 0;
        for (k, (g, _, _)) in gains.iter().enumerate() {
            cum += g;
            if cum > best_sum {
                best_sum = cum;
                best_k = k + 1;
            }
        }
        if best_k == 0 {
            break; // converged
        }
        for (_, a, b) in gains.into_iter().take(best_k) {
            side[a] = true;
            side[b] = false;
        }
    }
    let cut = w.cut_weight(&side);
    Bisection { side, cut }
}

/// Randomised swap hill-climbing with restarts.
fn local_search(w: &SymMatrix, restarts: u32, seed: u64) -> Bisection {
    let n = w.n();
    let half = n / 2;
    let mut best: Option<Bisection> = None;
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    for _ in 0..restarts.max(1) {
        // Random balanced start (Fisher-Yates prefix).
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            order.swap(i, j);
        }
        let mut side = vec![false; n];
        for &i in order.iter().take(half) {
            side[i] = true;
        }
        // Hill-climb: apply the best improving swap until none remains.
        let mut cut = w.cut_weight(&side);
        loop {
            let mut best_swap: Option<(f64, usize, usize)> = None;
            for a in 0..n {
                if side[a] {
                    continue;
                }
                for b in 0..n {
                    if !side[b] {
                        continue;
                    }
                    side[a] = true;
                    side[b] = false;
                    let c = w.cut_weight(&side);
                    side[a] = false;
                    side[b] = true;
                    if c + 1e-12 < cut && best_swap.is_none_or(|(bc, _, _)| c < bc) {
                        best_swap = Some((c, a, b));
                    }
                }
            }
            let Some((c, a, b)) = best_swap else { break };
            side[a] = true;
            side[b] = false;
            cut = c;
        }
        if best.as_ref().is_none_or(|b| cut < b.cut) {
            best = Some(Bisection { side, cut });
        }
    }
    best.expect("restarts >= 1")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two tight pairs weakly connected: optimal cut separates the pairs.
    fn two_clusters() -> SymMatrix {
        let mut w = SymMatrix::new(4);
        w.set(0, 1, 10.0);
        w.set(2, 3, 10.0);
        w.set(0, 2, 1.0);
        w.set(1, 3, 1.0);
        w
    }

    #[test]
    fn exhaustive_finds_optimum() {
        let b = bisect(&two_clusters(), PartitionMethod::Exhaustive);
        assert_eq!(b.cut, 2.0);
        assert_eq!(b.side[0], b.side[1]);
        assert_eq!(b.side[2], b.side[3]);
        assert_ne!(b.side[0], b.side[2]);
    }

    #[test]
    fn kl_matches_exhaustive_on_small_graphs() {
        let b = bisect(&two_clusters(), PartitionMethod::KernighanLin);
        assert_eq!(b.cut, 2.0);
    }

    #[test]
    fn local_search_matches_exhaustive_on_small_graphs() {
        let b = bisect(
            &two_clusters(),
            PartitionMethod::LocalSearch {
                restarts: 4,
                seed: 1,
            },
        );
        assert_eq!(b.cut, 2.0);
    }

    #[test]
    fn balance_is_enforced() {
        // A star graph wants everything on one side; balance forbids it.
        let mut w = SymMatrix::new(6);
        for i in 1..6 {
            w.set(0, i, 1.0);
        }
        for method in [PartitionMethod::Exhaustive, PartitionMethod::KernighanLin] {
            let b = bisect(&w, method);
            let ones = b.side.iter().filter(|&&s| s).count();
            assert_eq!(ones, 3, "{method:?} must keep sides balanced");
        }
    }

    #[test]
    fn odd_node_counts_split_near_evenly() {
        let mut w = SymMatrix::new(5);
        w.set(0, 1, 5.0);
        w.set(2, 3, 5.0);
        w.set(3, 4, 5.0);
        let b = bisect(&w, PartitionMethod::Exhaustive);
        let ones = b.side.iter().filter(|&&s| s).count();
        assert_eq!(ones, 2, "true side gets floor(n/2)");
    }

    #[test]
    fn heuristics_never_beat_exhaustive() {
        // Deterministic pseudo-random graphs: exhaustive is the optimum.
        let mut state = 42u64;
        let mut rnd = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 100.0
        };
        for n in [4usize, 6, 8, 10] {
            let mut w = SymMatrix::new(n);
            for a in 0..n {
                for b in (a + 1)..n {
                    w.set(a, b, rnd());
                }
            }
            let opt = bisect(&w, PartitionMethod::Exhaustive).cut;
            let kl = bisect(&w, PartitionMethod::KernighanLin).cut;
            let ls = bisect(
                &w,
                PartitionMethod::LocalSearch {
                    restarts: 8,
                    seed: 7,
                },
            )
            .cut;
            assert!(kl >= opt - 1e-9, "KL {kl} below optimum {opt}?");
            assert!(ls >= opt - 1e-9, "LS {ls} below optimum {opt}?");
            // And they should be close at these sizes.
            assert!(kl <= opt * 1.8 + 1e-9, "KL too far off: {kl} vs {opt}");
            assert!(ls <= opt * 1.5 + 1e-9, "LS too far off: {ls} vs {opt}");
        }
    }

    #[test]
    fn partition_k_four_groups() {
        // 8 nodes in 4 tight pairs.
        let mut w = SymMatrix::new(8);
        for p in 0..4 {
            w.set(2 * p, 2 * p + 1, 10.0);
        }
        // Weak noise edges.
        w.add(0, 2, 0.5);
        w.add(3, 5, 0.5);
        let groups = partition_k(&w, 4, PartitionMethod::Exhaustive);
        // Pairs must land together.
        for p in 0..4 {
            assert_eq!(groups[2 * p], groups[2 * p + 1], "pair {p} split");
        }
        // Exactly 4 distinct group labels, each of size 2.
        let mut sizes = std::collections::HashMap::new();
        for &g in &groups {
            *sizes.entry(g).or_insert(0) += 1;
        }
        assert_eq!(sizes.len(), 4);
        assert!(sizes.values().all(|&s| s == 2));
    }

    #[test]
    fn ties_break_canonically() {
        // Complete graph with equal weights: every balanced bisection has
        // the same cut, so the result is pure tie-break. Node 0 is pinned
        // to side `false` and only strict improvements replace the
        // incumbent, so the lexicographically smallest true-side set
        // ({1, 2}) wins.
        let mut w = SymMatrix::new(4);
        for a in 0..4 {
            for b in (a + 1)..4 {
                w.set(a, b, 1.0);
            }
        }
        let b = bisect(&w, PartitionMethod::Exhaustive);
        assert_eq!(b.side, vec![false, true, true, false]);
        // partition_k inherits the canonical order: the false side keeps
        // the low group indices.
        assert_eq!(partition_k(&w, 2, PartitionMethod::Auto), vec![0, 1, 1, 0]);

        // Two hierarchy levels over a uniform 8-node graph stay stable
        // call-to-call and across methods that share the optimum.
        let mut w8 = SymMatrix::new(8);
        for a in 0..8 {
            for b in (a + 1)..8 {
                w8.set(a, b, 2.5);
            }
        }
        let g1 = partition_k(&w8, 4, PartitionMethod::Exhaustive);
        let g2 = partition_k(&w8, 4, PartitionMethod::Exhaustive);
        assert_eq!(g1, g2);
        let mut sizes = [0usize; 4];
        for &g in &g1 {
            sizes[g] += 1;
        }
        assert_eq!(sizes, [2, 2, 2, 2]);
    }

    #[test]
    fn partition_one_group_is_trivial() {
        let w = two_clusters();
        let groups = partition_k(&w, 1, PartitionMethod::Auto);
        assert!(groups.iter().all(|&g| g == 0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn partition_k_rejects_non_power_of_two() {
        partition_k(&SymMatrix::new(4), 3, PartitionMethod::Auto);
    }

    #[test]
    fn exhaustive_two_nodes() {
        let mut w = SymMatrix::new(2);
        w.set(0, 1, 3.0);
        let b = bisect(&w, PartitionMethod::Exhaustive);
        assert_eq!(b.cut, 3.0);
        assert_ne!(b.side[0], b.side[1]);
    }
}
