//! Pairwise-attributed weighted interference graph.
//!
//! The hardware reports interference per *(process, core)*: at every
//! context switch, how much the departing process's new footprint contests
//! each core's filter. Per-core attribution has a structural blind spot on
//! a 2-core machine (every balanced cross-pairing internalises the same
//! total weight — see DESIGN.md), and the own-core measurement is polluted
//! by concurrent other-core evictions.
//!
//! The paper's user-level monitoring process, however, *knows the current
//! placement* (it sets the affinities itself). This policy exploits that:
//! each per-core contested sample is split among the processes resident on
//! that core at sampling time and folded into a persistent per-**pair**
//! EWMA. As the profiling loop re-invokes the policy under different
//! placements, different subsets co-reside and the pairwise estimates
//! become identifiable — the software-side completion of the paper's
//! hardware mechanism, using no information beyond the signature samples
//! and the monitor's own affinity decisions.
//!
//! The MIN-CUT then runs over genuinely pairwise weights, so "which two
//! processes should time-share" is decided by evidence about *those two
//! processes*.

use crate::partition::{partition_k, PartitionMethod};
use crate::policy::{flat_threads, mapping_from_groups, AllocationPolicy};
use crate::SymMatrix;
use std::collections::HashMap;
use symbio_machine::{Mapping, ProcView};

/// EWMA factor for pairwise estimates.
const ALPHA: f64 = 0.4;

/// Stateful pairwise-attribution policy (see module docs).
#[derive(Debug, Clone)]
pub struct PairwisePolicy {
    /// Partitioning algorithm.
    pub method: PartitionMethod,
    /// Scale each directed contribution by the source's occupancy weight
    /// (the Section 3.3.3 refinement).
    pub weighted: bool,
    pair_ewma: HashMap<(usize, usize), f64>,
}

impl PairwisePolicy {
    /// New policy with default (exact) partitioning, occupancy-weighted.
    pub fn new() -> Self {
        PairwisePolicy {
            method: PartitionMethod::Auto,
            weighted: true,
            pair_ewma: HashMap::new(),
        }
    }

    /// Current estimate for a pair (order-insensitive).
    pub fn pair_estimate(&self, a: usize, b: usize) -> f64 {
        let k = if a < b { (a, b) } else { (b, a) };
        self.pair_ewma.get(&k).copied().unwrap_or(0.0)
    }

    fn fold(&mut self, a: usize, b: usize, value: f64) {
        let k = if a < b { (a, b) } else { (b, a) };
        // Blend from zero even on first observation: inserting the raw
        // value would give freshly-discovered pairs an undamped advantage
        // over long-observed (EWMA-attenuated) ones.
        let e = self.pair_ewma.entry(k).or_insert(0.0);
        *e = ALPHA * value + (1.0 - ALPHA) * *e;
    }
}

impl Default for PairwisePolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl AllocationPolicy for PairwisePolicy {
    fn name(&self) -> &'static str {
        "pairwise-wig"
    }

    fn allocate(&mut self, views: &[ProcView], cores: usize) -> Mapping {
        let threads = flat_threads(views);
        let n = threads.len();
        if n <= cores {
            let groups: Vec<usize> = (0..n).collect();
            return mapping_from_groups(&threads, &groups, cores);
        }

        // Attribute this round's cross-core contested samples to pairs.
        // `last_overlap[j]` is the latest hardware sample of how much this
        // thread's fresh footprint contests core j's filter; split it
        // across the threads currently resident on core j.
        let residents: Vec<Vec<usize>> = (0..cores)
            .map(|c| {
                threads
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| t.last_core == Some(c))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        let mut contributions: Vec<(usize, usize, f64)> = Vec::new();
        for (i, t) in threads.iter().enumerate() {
            let Some(own) = t.last_core else { continue };
            if t.samples == 0 {
                continue;
            }
            let w = if self.weighted {
                f64::from(t.last_occupancy).max(1.0)
            } else {
                1.0
            };
            for (j, res) in residents.iter().enumerate() {
                if j == own || res.is_empty() {
                    continue;
                }
                let raw = t.contested_with(j);
                let share = raw / res.len() as f64;
                for &b in res {
                    if b != i {
                        contributions.push((i, b, w.sqrt() * share));
                    }
                }
            }
        }
        for (a, b, v) in contributions {
            let ta = threads[a].tid;
            let tb = threads[b].tid;
            self.fold(ta, tb, v);
        }

        // MIN-CUT over the pairwise matrix.
        let mut w = SymMatrix::new(n);
        for a in 0..n {
            for b in (a + 1)..n {
                w.set(a, b, self.pair_estimate(threads[a].tid, threads[b].tid));
            }
        }
        let groups = partition_k(&w, cores.next_power_of_two(), self.method);
        mapping_from_groups(&threads, &groups, cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbio_machine::ThreadView;

    fn view(tid: usize, occ: u32, overlap: Vec<f64>, last_core: usize) -> ProcView {
        ProcView {
            pid: tid,
            name: format!("p{tid}"),
            threads: vec![ThreadView {
                tid,
                pid: tid,
                name: format!("p{tid}"),
                occupancy: f64::from(occ),
                symbiosis: vec![100.0; overlap.len()],
                overlap,
                last_occupancy: occ,
                last_core: Some(last_core),
                samples: 3,
                filter_len: 4096,
                l2_miss_rate: 0.1,
                l2_misses: 10,
                retired: 0,
            }],
        }
    }

    #[test]
    fn accumulates_pairwise_estimates() {
        // NOTE: within a single placement, equal splitting across residents
        // cannot distinguish which resident the contestation is "about" —
        // identification needs placement variety across invocations
        // (documented in the module docs). This test checks accumulation
        // and balance, then feeds a second placement to disambiguate.
        let mut p = PairwisePolicy::new();
        // Placement {0,2}|{1,3}: P0 heavily contests core 1.
        let views = vec![
            view(0, 100, vec![0.0, 900.0], 0),
            view(1, 100, vec![50.0, 0.0], 1),
            view(2, 10, vec![0.0, 5.0], 0),
            view(3, 10, vec![5.0, 0.0], 1),
        ];
        let m = p.allocate(&views, 2);
        assert!(p.pair_estimate(0, 1) > p.pair_estimate(2, 3));
        assert_eq!(m.group_sizes(2), vec![2, 2]);
        // Placement {0,3}|{1,2}: P0 still contests P1's core, P3 no
        // longer shares it — evidence now singles out the (0,1) pair.
        let views2 = vec![
            view(0, 100, vec![0.0, 900.0], 0),
            view(1, 100, vec![800.0, 0.0], 1),
            view(2, 10, vec![0.0, 5.0], 1),
            view(3, 10, vec![5.0, 0.0], 0),
        ];
        let m2 = p.allocate(&views2, 2);
        assert!(p.pair_estimate(0, 1) > p.pair_estimate(0, 3));
        assert!(p.pair_estimate(0, 1) > p.pair_estimate(2, 3));
        assert_eq!(m2.core_of(0), m2.core_of(1), "evidence co-locates P0+P1");
        assert_eq!(m2.group_sizes(2), vec![2, 2]);
    }

    #[test]
    fn estimates_persist_across_invocations() {
        let mut p = PairwisePolicy::new();
        let views = vec![
            view(0, 100, vec![0.0, 900.0], 0),
            view(1, 100, vec![800.0, 0.0], 1),
            view(2, 10, vec![0.0, 5.0], 0),
            view(3, 10, vec![5.0, 0.0], 1),
        ];
        p.allocate(&views, 2);
        let first = p.pair_estimate(0, 1);
        assert!(first > 0.0);
        // A silent round (no new samples: samples == 0) must not erase it.
        let mut quiet = views.clone();
        for v in &mut quiet {
            v.threads[0].samples = 0;
        }
        p.allocate(&quiet, 2);
        assert!(p.pair_estimate(0, 1) > 0.0);
    }

    #[test]
    fn shares_split_among_residents() {
        let mut p = PairwisePolicy::new();
        // P0 contests core 1 (600 lines) where P1 and P2 both live: each
        // pair gets half the attribution.
        let views = vec![
            view(0, 100, vec![0.0, 600.0], 0),
            view(1, 100, vec![0.0, 0.0], 1),
            view(2, 100, vec![0.0, 0.0], 1),
            view(3, 100, vec![0.0, 0.0], 0),
        ];
        p.allocate(&views, 2);
        let e01 = p.pair_estimate(0, 1);
        let e02 = p.pair_estimate(0, 2);
        assert!(e01 > 0.0);
        assert!((e01 - e02).abs() < 1e-9, "equal split across residents");
    }

    #[test]
    fn fewer_threads_than_cores_spreads() {
        let mut p = PairwisePolicy::new();
        let views = vec![
            view(0, 1, vec![0.0, 0.0, 0.0, 0.0], 0),
            view(1, 1, vec![0.0, 0.0, 0.0, 0.0], 1),
        ];
        let m = p.allocate(&views, 4);
        assert_ne!(m.core_of(0), m.core_of(1));
    }
}
