//! Interference-graph construction (Sections 3.3.2–3.3.3, Figure 7).

use crate::matrix::SymMatrix;
use symbio_machine::ThreadView;

// The metric enum moved to the unified evaluation engine (`symbio-eval`)
// so the sweep, the allocators and the online engine agree on one
// definition; re-exported here to keep existing import paths valid.
pub use symbio_eval::InterferenceMetric;

/// The consolidated undirected interference graph over threads.
///
/// Construction follows Figure 7: the *directed* edge `a → b` carries
/// `I_{a, core(b)}` — the interference of `a` (its RBV) with the Core
/// Filter of the core `b` last ran on, because "a process has equal
/// interference with all processes of a different core". The directed graph
/// is consolidated by summing the two directions; the weighted variant
/// multiplies each direction by the source's occupancy weight first.
#[derive(Debug, Clone)]
pub struct InterferenceGraph {
    weights: SymMatrix,
    /// tid order of the nodes.
    tids: Vec<usize>,
}

impl InterferenceGraph {
    /// Build the unweighted (Section 3.3.2) graph.
    pub fn unweighted(threads: &[&ThreadView], metric: InterferenceMetric) -> Self {
        Self::build(threads, false, metric)
    }

    /// Build the occupancy-weighted (Section 3.3.3) graph.
    pub fn weighted(threads: &[&ThreadView], metric: InterferenceMetric) -> Self {
        Self::build(threads, true, metric)
    }

    fn build(threads: &[&ThreadView], weighted: bool, metric: InterferenceMetric) -> Self {
        let n = threads.len();
        let mut weights = SymMatrix::new(n);
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                // Directed a → b: interference of a with b's core — the
                // shared Figure 7 edge from the unified evaluator.
                let w = symbio_eval::directed_weight(metric, threads[a], threads[b], weighted);
                weights.add(a, b, w);
            }
        }
        InterferenceGraph {
            weights,
            tids: threads.iter().map(|t| t.tid).collect(),
        }
    }

    /// The consolidated weight matrix (indexed by node position, not tid).
    pub fn weights(&self) -> &SymMatrix {
        &self.weights
    }

    /// Mutable access (used by the two-phase algorithm to pin edges).
    pub fn weights_mut(&mut self) -> &mut SymMatrix {
        &mut self.weights
    }

    /// tid of node `i`.
    pub fn tid_of(&self, i: usize) -> usize {
        self.tids[i]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.tids.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.tids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view(tid: usize, occupancy: f64, symbiosis: Vec<f64>, last_core: usize) -> ThreadView {
        let overlap = symbiosis.iter().map(|s| 100.0 - s).collect();
        ThreadView {
            tid,
            pid: tid,
            name: format!("p{tid}"),
            occupancy,
            symbiosis,
            overlap,
            last_occupancy: occupancy as u32,
            last_core: Some(last_core),
            samples: 1,
            filter_len: 64,
            l2_miss_rate: 0.0,
            l2_misses: 0,
            retired: 0,
        }
    }

    #[test]
    fn figure7_consolidation() {
        // Two processes on different cores: edge = I_a,core(b) + I_b,core(a).
        let a = view(0, 10.0, vec![4.0, 8.0], 0); // on core 0
        let b = view(1, 20.0, vec![2.0, 16.0], 1); // on core 1
        let g = InterferenceGraph::unweighted(&[&a, &b], InterferenceMetric::ReciprocalSymbiosis);
        // a → b: I_a with core 1 = 1/8; b → a: I_b with core 0 = 1/2.
        let expect = 1.0 / 8.0 + 1.0 / 2.0;
        assert!((g.weights().get(0, 1) - expect).abs() < 1e-12);
    }

    #[test]
    fn weighted_scales_by_source_occupancy() {
        let a = view(0, 10.0, vec![4.0, 8.0], 0);
        let b = view(1, 20.0, vec![2.0, 16.0], 1);
        let g = InterferenceGraph::weighted(&[&a, &b], InterferenceMetric::ReciprocalSymbiosis);
        // W_a·I_a,c1 + W_b·I_b,c0 = 10/8 + 20/2.
        let expect = 10.0 / 8.0 + 20.0 / 2.0;
        assert!((g.weights().get(0, 1) - expect).abs() < 1e-12);
    }

    #[test]
    fn low_occupancy_discounted_in_weighted_graph() {
        // Section 3.3.3's motivation: a near-empty process has tiny
        // symbiosis (looks like high interference) but should carry little
        // weight.
        let idle = view(0, 0.5, vec![0.4, 0.4], 0); // tiny occupancy
        let busy1 = view(1, 100.0, vec![50.0, 120.0], 1);
        let uw = InterferenceGraph::unweighted(
            &[&idle, &busy1],
            InterferenceMetric::ReciprocalSymbiosis,
        );
        let w =
            InterferenceGraph::weighted(&[&idle, &busy1], InterferenceMetric::ReciprocalSymbiosis);
        // Unweighted: the idle process's reciprocal symbiosis dominates.
        assert!(uw.weights().get(0, 1) > 1.0);
        // Weighted: its contribution is scaled down by its 0.5 occupancy.
        assert!(w.weights().get(0, 1) < uw.weights().get(0, 1) * 10.0);
        let idle_contrib_uw = 2.0; // clamped interference
        let idle_contrib_w = 0.5 * 2.0;
        assert!(idle_contrib_w < idle_contrib_uw);
    }

    #[test]
    fn missing_core_information_defaults() {
        let mut a = view(0, 1.0, vec![4.0, 4.0], 0);
        a.last_core = None;
        let b = view(1, 1.0, vec![4.0, 4.0], 1);
        let g = InterferenceGraph::unweighted(&[&a, &b], InterferenceMetric::ReciprocalSymbiosis);
        assert!(g.weights().get(0, 1) > 0.0);
        assert_eq!(g.len(), 2);
        assert!(!g.is_empty());
    }

    #[test]
    fn overlap_metric_uses_contested_capacity() {
        let a = view(0, 10.0, vec![90.0, 40.0], 0); // overlap [10, 60]
        let b = view(1, 20.0, vec![30.0, 80.0], 1); // overlap [70, 20]
        let g = InterferenceGraph::unweighted(&[&a, &b], InterferenceMetric::Overlap);
        // a → b: contested with core 1 = 60; b → a: contested with core 0
        // = 70.
        assert!((g.weights().get(0, 1) - 130.0).abs() < 1e-9);
        let gw = InterferenceGraph::weighted(&[&a, &b], InterferenceMetric::Overlap);
        assert!((gw.weights().get(0, 1) - (10.0 * 60.0 + 20.0 * 70.0)).abs() < 1e-9);
    }

    #[test]
    fn tids_preserved() {
        let a = view(7, 1.0, vec![1.0, 1.0], 0);
        let b = view(3, 1.0, vec![1.0, 1.0], 1);
        let g = InterferenceGraph::unweighted(&[&a, &b], InterferenceMetric::ReciprocalSymbiosis);
        assert_eq!(g.tid_of(0), 7);
        assert_eq!(g.tid_of(1), 3);
    }
}
