//! Symmetric weight matrix for interference graphs.

use serde::{Deserialize, Serialize};

/// A dense symmetric `n × n` matrix of edge weights (diagonal unused).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SymMatrix {
    n: usize,
    data: Vec<f64>,
}

impl SymMatrix {
    /// Zero matrix of order `n`.
    pub fn new(n: usize) -> Self {
        SymMatrix {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Order of the matrix.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Weight between `a` and `b` (0 on the diagonal).
    #[inline]
    pub fn get(&self, a: usize, b: usize) -> f64 {
        self.data[a * self.n + b]
    }

    /// Set the weight between `a` and `b` (both triangles updated).
    pub fn set(&mut self, a: usize, b: usize, w: f64) {
        assert!(a != b, "diagonal is not a valid edge");
        self.data[a * self.n + b] = w;
        self.data[b * self.n + a] = w;
    }

    /// Add `w` to the edge `a`–`b`.
    pub fn add(&mut self, a: usize, b: usize, w: f64) {
        assert!(a != b, "diagonal is not a valid edge");
        self.data[a * self.n + b] += w;
        self.data[b * self.n + a] += w;
    }

    /// Sum of weights of edges crossing the cut defined by `side`
    /// (`side[i]` = which side node `i` is on).
    pub fn cut_weight(&self, side: &[bool]) -> f64 {
        debug_assert_eq!(side.len(), self.n);
        let mut cut = 0.0;
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                if side[a] != side[b] {
                    cut += self.get(a, b);
                }
            }
        }
        cut
    }

    /// Sum of all edge weights.
    pub fn total_weight(&self) -> f64 {
        let mut t = 0.0;
        for a in 0..self.n {
            for b in (a + 1)..self.n {
                t += self.get(a, b);
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_is_symmetric() {
        let mut m = SymMatrix::new(3);
        m.set(0, 2, 5.0);
        assert_eq!(m.get(0, 2), 5.0);
        assert_eq!(m.get(2, 0), 5.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn add_accumulates() {
        let mut m = SymMatrix::new(2);
        m.add(0, 1, 1.5);
        m.add(1, 0, 2.5);
        assert_eq!(m.get(0, 1), 4.0);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn diagonal_rejected() {
        let mut m = SymMatrix::new(2);
        m.set(1, 1, 1.0);
    }

    #[test]
    fn cut_weight_counts_crossing_edges() {
        let mut m = SymMatrix::new(4);
        m.set(0, 1, 1.0);
        m.set(2, 3, 2.0);
        m.set(0, 2, 4.0);
        m.set(1, 3, 8.0);
        // Cut {0,1} | {2,3}: crossing = 4 + 8.
        assert_eq!(m.cut_weight(&[false, false, true, true]), 12.0);
        // Cut {0,2} | {1,3}: crossing = 1 + 2.
        assert_eq!(m.cut_weight(&[false, true, false, true]), 3.0);
    }

    #[test]
    fn total_weight_sums_upper_triangle() {
        let mut m = SymMatrix::new(3);
        m.set(0, 1, 1.0);
        m.set(0, 2, 2.0);
        m.set(1, 2, 3.0);
        assert_eq!(m.total_weight(), 6.0);
    }
}
