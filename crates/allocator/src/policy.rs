//! The allocation-policy trait and the three signature-driven algorithms.

use crate::graph::{InterferenceGraph, InterferenceMetric};
use crate::partition::{partition_k, PartitionMethod};
use symbio_machine::{Mapping, ProcView, ThreadView};

/// An allocation policy: signature contexts in, thread→core mapping out.
///
/// Policies are invoked periodically from the profiling loop (the paper's
/// user-level monitoring process, every 100 ms); the returned mapping is
/// applied through the machine's affinity interface.
pub trait AllocationPolicy {
    /// Short name for reports (e.g. `"weighted-ig"`).
    fn name(&self) -> &'static str;

    /// Compute a mapping for every managed thread in `views` onto `cores`.
    fn allocate(&mut self, views: &[ProcView], cores: usize) -> Mapping;
}

/// Flatten process views into tid-ordered thread views.
pub(crate) fn flat_threads(views: &[ProcView]) -> Vec<&ThreadView> {
    let mut ts: Vec<&ThreadView> = views.iter().flat_map(|p| p.threads.iter()).collect();
    ts.sort_by_key(|t| t.tid);
    assert!(
        ts.iter().enumerate().all(|(i, t)| t.tid == i),
        "thread ids must be contiguous from 0"
    );
    ts
}

/// Turn a per-node group assignment into a tid→core [`Mapping`].
pub(crate) fn mapping_from_groups(
    threads: &[&ThreadView],
    groups: &[usize],
    cores: usize,
) -> Mapping {
    let mut cores_by_tid = vec![0usize; threads.len()];
    for (i, t) in threads.iter().enumerate() {
        cores_by_tid[t.tid] = groups[i] % cores;
    }
    Mapping::new(cores_by_tid)
}

/// Section 3.3.1 — **weight sorting**: sort threads by RBV occupancy
/// weight (descending) and place consecutive runs of ⌈P/N⌉ on the same
/// core, so the heaviest cache users time-share instead of co-running.
#[derive(Debug, Default, Clone, Copy)]
pub struct WeightSortPolicy;

impl AllocationPolicy for WeightSortPolicy {
    fn name(&self) -> &'static str {
        "weight-sort"
    }

    fn allocate(&mut self, views: &[ProcView], cores: usize) -> Mapping {
        let threads = flat_threads(views);
        sort_and_group(&threads, cores, |t| t.occupancy)
    }
}

/// Shared helper: sort by a key descending, then group consecutively.
pub(crate) fn sort_and_group(
    threads: &[&ThreadView],
    cores: usize,
    key: impl Fn(&ThreadView) -> f64,
) -> Mapping {
    let p = threads.len();
    let group_size = p.div_ceil(cores);
    let mut order: Vec<usize> = (0..p).collect();
    order.sort_by(|&a, &b| {
        key(threads[b])
            .partial_cmp(&key(threads[a]))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut groups = vec![0usize; p];
    for (rank, &i) in order.iter().enumerate() {
        groups[i] = rank / group_size;
    }
    mapping_from_groups(threads, &groups, cores)
}

/// Section 3.3.2 — **interference graph**: balanced MIN-CUT over the
/// reciprocal-symbiosis graph; intra-group (same-core) interference is
/// maximised, inter-group interference minimised.
#[derive(Debug, Clone, Copy)]
pub struct InterferenceGraphPolicy {
    /// Partitioning algorithm.
    pub method: PartitionMethod,
    /// Interference measurement feeding the graph.
    pub metric: InterferenceMetric,
}

impl Default for InterferenceGraphPolicy {
    fn default() -> Self {
        InterferenceGraphPolicy {
            method: PartitionMethod::Auto,
            metric: InterferenceMetric::Overlap,
        }
    }
}

impl InterferenceGraphPolicy {
    /// The paper's literal reciprocal-symbiosis variant.
    pub fn paper_literal() -> Self {
        InterferenceGraphPolicy {
            metric: InterferenceMetric::ReciprocalSymbiosis,
            ..Self::default()
        }
    }
}

impl AllocationPolicy for InterferenceGraphPolicy {
    fn name(&self) -> &'static str {
        "interference-graph"
    }

    fn allocate(&mut self, views: &[ProcView], cores: usize) -> Mapping {
        let threads = flat_threads(views);
        if threads.len() <= cores {
            // Degenerate case: one thread per core (affinity-like).
            let groups: Vec<usize> = (0..threads.len()).collect();
            return mapping_from_groups(&threads, &groups, cores);
        }
        let graph = InterferenceGraph::unweighted(&threads, self.metric);
        let groups = partition_k(graph.weights(), cores.next_power_of_two(), self.method);
        mapping_from_groups(&threads, &groups, cores)
    }
}

/// Section 3.3.3 — **weighted interference graph**: like
/// [`InterferenceGraphPolicy`] but each directed contribution is scaled by
/// the source's occupancy weight, so low-occupancy processes (whose low
/// symbiosis is an artefact, not real interference) stop distorting the
/// cut. The paper's best performer.
#[derive(Debug, Clone, Copy)]
pub struct WeightedInterferenceGraphPolicy {
    /// Partitioning algorithm.
    pub method: PartitionMethod,
    /// Interference measurement feeding the graph.
    pub metric: InterferenceMetric,
}

impl Default for WeightedInterferenceGraphPolicy {
    fn default() -> Self {
        WeightedInterferenceGraphPolicy {
            method: PartitionMethod::Auto,
            metric: InterferenceMetric::Overlap,
        }
    }
}

impl WeightedInterferenceGraphPolicy {
    /// The paper's literal reciprocal-symbiosis variant.
    pub fn paper_literal() -> Self {
        WeightedInterferenceGraphPolicy {
            metric: InterferenceMetric::ReciprocalSymbiosis,
            ..Self::default()
        }
    }
}

impl AllocationPolicy for WeightedInterferenceGraphPolicy {
    fn name(&self) -> &'static str {
        "weighted-ig"
    }

    fn allocate(&mut self, views: &[ProcView], cores: usize) -> Mapping {
        let threads = flat_threads(views);
        if threads.len() <= cores {
            let groups: Vec<usize> = (0..threads.len()).collect();
            return mapping_from_groups(&threads, &groups, cores);
        }
        let graph = InterferenceGraph::weighted(&threads, self.metric);
        let groups = partition_k(graph.weights(), cores.next_power_of_two(), self.method);
        mapping_from_groups(&threads, &groups, cores)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn view(
        tid: usize,
        pid: usize,
        occupancy: f64,
        symbiosis: Vec<f64>,
        last_core: usize,
    ) -> ThreadView {
        let overlap = symbiosis.iter().map(|s| (100.0 - s).max(0.0)).collect();
        ThreadView {
            tid,
            pid,
            name: format!("p{pid}"),
            occupancy,
            symbiosis,
            overlap,
            last_occupancy: occupancy as u32,
            last_core: Some(last_core),
            samples: 1,
            filter_len: 4096,
            l2_miss_rate: 0.1,
            l2_misses: 100,
            retired: 0,
        }
    }

    fn proc_of(t: ThreadView) -> ProcView {
        ProcView {
            pid: t.pid,
            name: t.name.clone(),
            threads: vec![t],
        }
    }

    #[test]
    fn weight_sort_groups_heavy_together() {
        // Occupancies 100, 90, 5, 1 → {100, 90} on one core, {5, 1} other.
        let views: Vec<ProcView> = vec![
            proc_of(view(0, 0, 100.0, vec![1.0, 1.0], 0)),
            proc_of(view(1, 1, 5.0, vec![1.0, 1.0], 1)),
            proc_of(view(2, 2, 90.0, vec![1.0, 1.0], 0)),
            proc_of(view(3, 3, 1.0, vec![1.0, 1.0], 1)),
        ];
        let m = WeightSortPolicy.allocate(&views, 2);
        assert_eq!(m.core_of(0), m.core_of(2), "two heaviest share a core");
        assert_eq!(m.core_of(1), m.core_of(3), "two lightest share a core");
        assert_ne!(m.core_of(0), m.core_of(1));
    }

    #[test]
    fn weight_sort_balances_group_sizes() {
        let views: Vec<ProcView> = (0..6)
            .map(|i| proc_of(view(i, i, i as f64, vec![1.0, 1.0], 0)))
            .collect();
        let m = WeightSortPolicy.allocate(&views, 2);
        let sizes = m.group_sizes(2);
        assert_eq!(sizes, vec![3, 3]);
    }

    /// A 3+1 placement with a unique MIN-CUT optimum. (Under a uniform
    /// 2+2 placement the consolidated "interference with the other core"
    /// metric ties every cross-core pairing — each process's cross-core
    /// interference is internalised exactly once whatever the pairing —
    /// so the algorithm's discrimination comes from non-uniform
    /// placements and from re-invocation as the mapping evolves. See
    /// DESIGN.md.)
    fn three_one_views(occupancies: [f64; 4]) -> Vec<ProcView> {
        // P0..P2 last ran on core 0, P3 on core 1.
        vec![
            proc_of(view(0, 0, occupancies[0], vec![100.0, 2.0], 0)),
            proc_of(view(1, 1, occupancies[1], vec![100.0, 2.5], 0)),
            proc_of(view(2, 2, occupancies[2], vec![100.0, 10.0], 0)),
            proc_of(view(3, 3, occupancies[3], vec![4.0, 100.0], 1)),
        ]
    }

    #[test]
    fn interference_graph_pairs_strongest_interferers() {
        // Hand-computed optimum: grouping {P0,P3} | {P1,P2} internalises
        // the two biggest edges (w03 = 0.75, w12 = 0.02) giving cut 1.04,
        // strictly below the alternatives (1.44 and 1.14).
        let views = three_one_views([50.0; 4]);
        let mut p = InterferenceGraphPolicy::paper_literal();
        let m = p.allocate(&views, 2);
        assert_eq!(
            m.core_of(0),
            m.core_of(3),
            "P0 (strongest mutual interference with P3's core) co-locates"
        );
        assert_eq!(m.core_of(1), m.core_of(2));
        assert_eq!(m.group_sizes(2), vec![2, 2]);
    }

    #[test]
    fn weighted_ig_follows_occupancy() {
        // Same symbiosis data, but P1 is the heavyweight (occupancy 100 vs
        // P0's 10) and P3 is nearly idle. Weighting flips the decision:
        // unweighted pairs P0+P3 (cut 1.04 as above); weighted pairs P1+P3
        // because W1·I1,c1 = 40 dominates (cut 18.25 vs 48.25 / 52.35).
        let views = three_one_views([10.0, 100.0, 100.0, 0.3]);
        let mut uw = InterferenceGraphPolicy::paper_literal();
        let mu = uw.allocate(&views, 2);
        assert_eq!(mu.core_of(0), mu.core_of(3), "unweighted pairs P0+P3");

        let mut wp = WeightedInterferenceGraphPolicy::paper_literal();
        let mw = wp.allocate(&views, 2);
        assert_eq!(
            mw.core_of(1),
            mw.core_of(3),
            "weighted variant pairs the heavyweight interferer with P3"
        );
        assert_eq!(mw.group_sizes(2), vec![2, 2]);
    }

    #[test]
    fn policy_cut_is_optimal_for_its_graph() {
        // The policy's grouping must achieve the exhaustive-optimal cut of
        // the very graph it builds.
        use crate::graph::InterferenceGraph;
        use crate::partition::{bisect, PartitionMethod};
        let views = three_one_views([10.0, 100.0, 100.0, 0.3]);
        let threads = flat_threads(&views);
        let g = InterferenceGraph::weighted(&threads, InterferenceMetric::Overlap);
        let opt = bisect(g.weights(), PartitionMethod::Exhaustive).cut;

        let mut wp = WeightedInterferenceGraphPolicy::default();
        let m = wp.allocate(&views, 2);
        let side: Vec<bool> = (0..4).map(|i| m.core_of(i) == 1).collect();
        let achieved = g.weights().cut_weight(&side);
        assert!((achieved - opt).abs() < 1e-9, "{achieved} vs optimum {opt}");
    }

    #[test]
    fn fewer_threads_than_cores_spreads() {
        let views: Vec<ProcView> = vec![
            proc_of(view(0, 0, 10.0, vec![1.0, 1.0, 1.0, 1.0], 0)),
            proc_of(view(1, 1, 10.0, vec![1.0, 1.0, 1.0, 1.0], 1)),
        ];
        let mut p = InterferenceGraphPolicy::default();
        let m = p.allocate(&views, 4);
        assert_ne!(m.core_of(0), m.core_of(1), "spread like affinity");
    }

    #[test]
    fn policies_report_names() {
        assert_eq!(WeightSortPolicy.name(), "weight-sort");
        assert_eq!(
            InterferenceGraphPolicy::default().name(),
            "interference-graph"
        );
        assert_eq!(
            WeightedInterferenceGraphPolicy::default().name(),
            "weighted-ig"
        );
    }
}
