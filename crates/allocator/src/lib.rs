//! # symbio-allocator
//!
//! The resource-allocation algorithms of Section 3.3, plus the baselines
//! they are compared against.
//!
//! All policies implement [`AllocationPolicy`]: given the per-process /
//! per-thread signature contexts exposed by the machine's query interface
//! (the paper's syscall / hypercall surface), produce a thread→core
//! [`Mapping`]. The intent of every algorithm is the same inversion:
//! processes that *hurt each other* when run concurrently under the shared
//! L2 should be herded onto the **same** core, where time-slicing
//! serialises them and the interference disappears.
//!
//! * [`WeightSortPolicy`] — Section 3.3.1: sort by RBV occupancy weight,
//!   group consecutive heavy hitters;
//! * [`InterferenceGraphPolicy`] — Section 3.3.2: balanced MIN-CUT over the
//!   reciprocal-symbiosis interference graph;
//! * [`WeightedInterferenceGraphPolicy`] — Section 3.3.3: edge weights
//!   scaled by occupancy, fixing the low-occupancy/low-symbiosis ambiguity;
//! * [`TwoPhasePolicy`] — Section 3.3.4: thread-granularity allocation for
//!   multi-threaded apps (weight-sort within a process, then a pinned
//!   weighted interference graph across all threads);
//! * [`DomainAwarePolicy`] — the multi-domain extension: MIN-CUT across
//!   cache domains first (who shares an L2 at all), then any of the above
//!   policies inside each domain;
//! * [`baselines`] — default (round-robin), random, cache-affinity, and a
//!   miss-rate-sorting scheduler standing in for the perf-counter
//!   approaches the paper argues against.
//!
//! The MIN-CUT itself ([`partition`]) is exact for the paper's problem
//! sizes (exhaustive balanced bisection; the paper used an SDP
//! approximation) with Kernighan–Lin and randomised local search available
//! for larger graphs, and hierarchical bisection for >2 cores.

#![warn(missing_docs)]

pub mod baselines;
pub mod domain;
pub mod graph;
pub mod matrix;
pub mod pairwise;
pub mod partition;
pub mod policy;
pub mod two_phase;

pub use baselines::{AffinityPolicy, DefaultPolicy, MissRateSortPolicy, RandomPolicy};
pub use domain::DomainAwarePolicy;
pub use graph::{InterferenceGraph, InterferenceMetric};
pub use matrix::SymMatrix;
pub use pairwise::PairwisePolicy;
pub use partition::PartitionMethod;
pub use policy::{
    AllocationPolicy, InterferenceGraphPolicy, WeightSortPolicy, WeightedInterferenceGraphPolicy,
};
pub use two_phase::TwoPhasePolicy;
