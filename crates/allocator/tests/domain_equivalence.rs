//! Refactor-equivalence suite: wrapping any allocation policy in a
//! 1-domain [`DomainAwarePolicy`] must be a behavioural no-op. Together
//! with the golden kernel digests in the workspace determinism tests
//! (which prove the 1-domain machine is bit-identical to the pre-refactor
//! single-L2 path), this pins the whole topology refactor: same machine
//! observables, same mappings, for every policy.

use proptest::prelude::*;
use symbio_allocator::{
    AffinityPolicy, AllocationPolicy, DefaultPolicy, DomainAwarePolicy, InterferenceGraphPolicy,
    MissRateSortPolicy, RandomPolicy, TwoPhasePolicy, WeightSortPolicy,
    WeightedInterferenceGraphPolicy,
};
use symbio_machine::{ProcView, ThreadView, Topology};

/// Deterministic xorshift so each proptest case expands one u64 seed into
/// a full random view set.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (self.next() % 10_000) as f64 / 10_000.0 * (hi - lo)
    }
}

/// Random single-threaded process views over a `cores`-core single-domain
/// machine, with occasional degenerate features (missing last_core, zero
/// occupancy) mixed in.
fn synth_views(seed: u64, threads: usize, cores: usize) -> Vec<ProcView> {
    let mut rng = Rng(seed | 1);
    (0..threads)
        .map(|tid| {
            let occupancy = if rng.next().is_multiple_of(8) {
                0.0
            } else {
                rng.f64_in(0.0, 120.0)
            };
            let symbiosis: Vec<f64> = (0..cores).map(|_| rng.f64_in(0.0, 100.0)).collect();
            let overlap: Vec<f64> = symbiosis.iter().map(|s| (100.0 - s).max(0.0)).collect();
            let last_core = if rng.next().is_multiple_of(8) {
                None
            } else {
                Some((rng.next() % cores as u64) as usize)
            };
            ProcView {
                pid: tid,
                name: format!("p{tid}"),
                threads: vec![ThreadView {
                    tid,
                    pid: tid,
                    name: format!("p{tid}"),
                    occupancy,
                    symbiosis,
                    overlap,
                    last_occupancy: occupancy as u32,
                    last_core,
                    samples: 1 + rng.next() % 5,
                    filter_len: 4096,
                    l2_miss_rate: rng.f64_in(0.0, 1.0),
                    l2_misses: rng.next() % 10_000,
                    retired: rng.next() % 1_000_000,
                }],
            }
        })
        .collect()
}

/// Every policy the crate ships, fresh per invocation (RandomPolicy is
/// stateful, so both sides of the comparison get the same seed).
fn all_policies(seed: u64) -> Vec<Box<dyn AllocationPolicy + Send>> {
    vec![
        Box::new(WeightSortPolicy),
        Box::new(InterferenceGraphPolicy::default()),
        Box::new(InterferenceGraphPolicy::paper_literal()),
        Box::new(WeightedInterferenceGraphPolicy::default()),
        Box::new(WeightedInterferenceGraphPolicy::paper_literal()),
        Box::new(TwoPhasePolicy::default()),
        Box::new(DefaultPolicy),
        Box::new(AffinityPolicy),
        Box::new(MissRateSortPolicy),
        Box::new(RandomPolicy::new(seed)),
    ]
}

proptest! {
    #[test]
    fn one_domain_wrapper_is_identity(
        seed in any::<u64>(),
        threads in 1usize..10,
        wide in any::<bool>(),
    ) {
        let cores = if wide { 4 } else { 2 };
        let views = synth_views(seed, threads, cores);
        let topo = Topology::shared_l2(cores);
        for (bare, wrapped) in all_policies(seed).into_iter().zip(all_policies(seed)) {
            let name = bare.name();
            let mut bare = bare;
            let expected = bare.allocate(&views, cores);
            let mut wrapped = DomainAwarePolicy::new(topo, wrapped);
            let got = wrapped.allocate(&views, cores);
            prop_assert!(
                got == expected,
                "policy {} diverged under a 1-domain wrapper (seed {seed}): {got:?} vs {expected:?}",
                name
            );
        }
    }

    #[test]
    fn multi_domain_mapping_is_valid_and_deterministic(
        seed in any::<u64>(),
        threads in 1usize..12,
    ) {
        // 2x2 topology; signature vectors are domain-local (2 entries).
        let topo = Topology::uniform(2, 2);
        let views = synth_views(seed, threads, 2);
        let run = || {
            let mut p = DomainAwarePolicy::weighted_ig(topo);
            p.allocate(&views, 4)
        };
        let m = run();
        prop_assert_eq!(m.len(), threads);
        for (tid, core) in m.iter() {
            prop_assert!(core < 4, "tid {tid} mapped off-machine to {core}");
        }
        prop_assert_eq!(run(), m);
    }
}
