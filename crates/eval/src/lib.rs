//! # symbio-eval — the unified evaluation engine
//!
//! One home for the paper's interference/symbiosis/gain model. Before
//! this crate existed the model was duplicated four ways: the scalar
//! interference clamp lived in both `symbio-cbf` (integer signatures)
//! and `symbio-machine` (EWMA-smoothed views), the directed-edge
//! dispatch lived in the allocator's graph builders *and* again inline
//! in the online engine's `predicted_gain*` functions, and the sweep
//! scored reference mappings with its own copy of the internalization
//! objective. Every caller now goes through this crate:
//!
//! * **scalar kernel** — [`reciprocal_interference`] (the Section 3.3.2
//!   clamp) plus [`missing_edge`], the value a metric reports for an
//!   unmeasured (cross-domain) pair;
//! * **signature access** — the [`SignatureSource`] trait abstracts
//!   "something with a per-core signature vector" so machine snapshots
//!   (offline sweep via `MeasureCache`) and `EpochRing` windows (online
//!   engine) are two callers of identical code;
//! * **edges** — [`signature_edge`] / [`directed_weight`] /
//!   [`pair_weight`], the Figure 7 directed edge and its consolidation;
//! * **mapping-level scoring** — [`predicted_gain`],
//!   [`predicted_gain_multidomain`] and [`internalized_fraction`]: the
//!   MIN-CUT objective ("fraction of total pairwise interference a
//!   mapping co-locates onto one core") that both the migration-cost
//!   hysteresis check and the sweep's reference-mapping ranking use;
//! * **hysteresis** — [`Hysteresis`], the vote/switch-cost gate, and
//!   the per-decision [`Explanation`] record the control plane serves;
//! * **domain-aware splicing helpers** — [`domain_ranges`],
//!   [`occupied_domains`], [`uf_find`], [`uf_union`].
//!
//! Bit-exactness: [`predicted_gain`] reproduces the deleted online
//! implementation exactly. The old code built an `InterferenceGraph`
//! whose `SymMatrix` cell for `i < j` accumulated `(0.0 + w_ij) + w_ji`
//! in that order; [`pair_weight`] computes `w_ij + w_ji` directly, which
//! is the same IEEE-754 value, and the `i < j` accumulation order of the
//! gain loop is preserved verbatim.

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Which per-(process, core) interference measurement feeds the model.
///
/// `ReciprocalSymbiosis` is the paper's literal definition (Section 3.3.2:
/// `1 / popcount(RBV ^ CF_j)`). It has two degeneracies this reproduction
/// documents in DESIGN.md: (1) from any balanced 2-core placement every
/// cross-core pairing produces an identical cut, so the MIN-CUT cannot
/// distinguish them, and (2) a core whose filter is dense (a streaming
/// polluter) *inflates* symbiosis, inverting the signal. `Overlap` is the
/// contested-capacity variant computed from the same filters
/// (`symbio_cbf::SignatureSample::overlap`) that preserves the paper's
/// intent (destructive processes attract) without the inversion, and is the
/// default for the graph policies; the cross-pairing tie remains (it is
/// structural to per-core attribution) and is resolved by the profiling
/// loop's re-invocation dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InterferenceMetric {
    /// The paper's literal reciprocal-XOR-symbiosis metric.
    ReciprocalSymbiosis,
    /// Contested capacity (`popcount(RBV & CF_j)`-based), the default.
    Overlap,
}

/// The paper's scalar interference kernel: the reciprocal of symbiosis,
/// with zero symbiosis mapped to the inverse of one-half so it stays
/// finite yet dominates any real value (Section 3.3.2).
///
/// The clamp threshold is `0.5` so one definition serves both signature
/// representations: for the hardware's integer symbiosis counts
/// (`symbio-cbf`), `s < 0.5` holds exactly when `s == 0`; for the
/// monitor's EWMA-smoothed floats (`symbio-machine`), values below one
/// half round to the same "effectively disjoint" clamp.
#[inline]
pub fn reciprocal_interference(symbiosis: f64) -> f64 {
    if symbiosis < 0.5 {
        2.0
    } else {
        1.0 / symbiosis
    }
}

/// The value a metric reports for an unmeasured pair (e.g. two threads
/// whose last cores sit in different cache domains, where per-core
/// signature vectors carry no evidence): symbiosis 0 clamps to 2.0; no
/// overlap evidence means no contested capacity.
#[inline]
pub fn missing_edge(metric: InterferenceMetric) -> f64 {
    match metric {
        InterferenceMetric::ReciprocalSymbiosis => 2.0,
        InterferenceMetric::Overlap => 0.0,
    }
}

/// Something carrying a per-core memory-footprint signature: a thread id,
/// an occupancy weight, the core it last ran on, and the two per-core
/// measurement vectors the hardware exports.
///
/// Implemented by `symbio_machine::ThreadView` (EWMA-smoothed monitor
/// views — what machine snapshots and `EpochRing` windows carry), so the
/// offline sweep and the online engine feed the same evaluation code.
pub trait SignatureSource {
    /// Flat thread id (stable across views).
    fn tid(&self) -> usize;
    /// Occupancy weight (Section 3.3.3's `W`).
    fn occupancy(&self) -> f64;
    /// Core the thread last ran on, if known.
    fn last_core(&self) -> Option<usize>;
    /// The paper's interference metric with core `j`
    /// ([`reciprocal_interference`] of the symbiosis with `j`).
    fn interference_with(&self, j: usize) -> f64;
    /// Contested capacity with core `j` (the overlap metric).
    fn contested_with(&self, j: usize) -> f64;
}

/// A thread→core assignment the evaluator can score. Implemented by
/// `symbio_machine::Mapping`.
pub trait CoreAssignment {
    /// Core assigned to thread `tid`.
    fn core_of(&self, tid: usize) -> usize;
    /// Number of threads mapped.
    fn len(&self) -> usize;
    /// Whether the assignment maps no threads.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The raw metric sample of source `a` against core `core_b` — the
/// dispatch every graph builder used to inline.
#[inline]
pub fn signature_edge<S: SignatureSource + ?Sized>(
    metric: InterferenceMetric,
    a: &S,
    core_b: usize,
) -> f64 {
    match metric {
        InterferenceMetric::ReciprocalSymbiosis => a.interference_with(core_b),
        InterferenceMetric::Overlap => a.contested_with(core_b),
    }
}

/// The Figure 7 directed edge `a → b`: the interference of `a` (its RBV)
/// with the Core Filter of the core `b` last ran on, optionally scaled by
/// `a`'s occupancy weight (the Section 3.3.3 refinement).
#[inline]
pub fn directed_weight<S: SignatureSource + ?Sized>(
    metric: InterferenceMetric,
    a: &S,
    b: &S,
    weighted: bool,
) -> f64 {
    let core_b = b.last_core().unwrap_or(0);
    let mut w = signature_edge(metric, a, core_b);
    if weighted {
        w *= a.occupancy();
    }
    w
}

/// The consolidated (undirected) pair weight: both directed edges summed,
/// exactly as `InterferenceGraph`'s `SymMatrix` accumulates them.
#[inline]
pub fn pair_weight<S: SignatureSource + ?Sized>(
    metric: InterferenceMetric,
    a: &S,
    b: &S,
    weighted: bool,
) -> f64 {
    directed_weight(metric, a, b, weighted) + directed_weight(metric, b, a, weighted)
}

/// Normalized predicted gain of `challenger` over `incumbent` on the
/// current views: the fraction of total pairwise interference each
/// mapping *internalizes* (co-locates onto one core, where time-slicing
/// neutralizes it — the MIN-CUT objective the allocators maximize),
/// differenced. Positive means the challenger co-locates more of the
/// destructive pairs; a remap is worth its cost only when this exceeds
/// the configured switch cost.
pub fn predicted_gain<S, M>(
    metric: InterferenceMetric,
    weighted: bool,
    threads: &[&S],
    incumbent: &M,
    challenger: &M,
) -> f64
where
    S: SignatureSource + ?Sized,
    M: CoreAssignment + ?Sized,
{
    let n = threads.len();
    let mut total = 0.0;
    let mut internal_inc = 0.0;
    let mut internal_cha = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let w = pair_weight(metric, threads[i], threads[j], weighted);
            total += w;
            let (ti, tj) = (threads[i].tid(), threads[j].tid());
            if incumbent.core_of(ti) == incumbent.core_of(tj) {
                internal_inc += w;
            }
            if challenger.core_of(ti) == challenger.core_of(tj) {
                internal_cha += w;
            }
        }
    }
    if total <= f64::EPSILON {
        0.0
    } else {
        (internal_cha - internal_inc) / total
    }
}

/// [`predicted_gain`] for one union-find component of a multi-domain
/// machine. Two differences from the flat version: only pairs where
/// *both* tids satisfy `include` contribute (cross-component pairs are
/// never co-located under either mapping, so nothing is lost), and pair
/// weight is measured only when both last cores share a cache domain,
/// indexed by the *domain-local* core label — signature vectors are
/// domain-local, so cross-domain contested capacity is unobservable.
pub fn predicted_gain_multidomain<S, M>(
    metric: InterferenceMetric,
    weighted: bool,
    threads: &[&S],
    ranges: &[std::ops::Range<usize>],
    incumbent: &M,
    challenger: &M,
    include: &dyn Fn(usize) -> bool,
) -> f64
where
    S: SignatureSource + ?Sized,
    M: CoreAssignment + ?Sized,
{
    let dom_of = |core: usize| ranges.iter().position(|r| r.contains(&core)).unwrap_or(0);
    // Directed interference a -> b, mirroring the flat edge but
    // domain-gated and locally indexed.
    let directed = |a: &S, b: &S| -> f64 {
        let (ca, cb) = (a.last_core().unwrap_or(0), b.last_core().unwrap_or(0));
        if dom_of(ca) != dom_of(cb) {
            return 0.0;
        }
        let local_b = cb - ranges[dom_of(cb)].start;
        let mut w = signature_edge(metric, a, local_b);
        if weighted {
            w *= a.occupancy();
        }
        w
    };
    let n = threads.len();
    let mut total = 0.0;
    let mut internal_inc = 0.0;
    let mut internal_cha = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let (ti, tj) = (threads[i].tid(), threads[j].tid());
            if !include(ti) || !include(tj) {
                continue;
            }
            let w = directed(threads[i], threads[j]) + directed(threads[j], threads[i]);
            total += w;
            if incumbent.core_of(ti) == incumbent.core_of(tj) {
                internal_inc += w;
            }
            if challenger.core_of(ti) == challenger.core_of(tj) {
                internal_cha += w;
            }
        }
    }
    if total <= f64::EPSILON {
        0.0
    } else {
        (internal_cha - internal_inc) / total
    }
}

/// Fraction of total pairwise interference `mapping` internalizes
/// (co-locates onto one core): the MIN-CUT objective as an absolute
/// score in `[0, 1]`, used to rank reference mappings in the sweep and
/// to score a what-if placement that has no comparable incumbent.
pub fn internalized_fraction<S, M>(
    metric: InterferenceMetric,
    weighted: bool,
    threads: &[&S],
    mapping: &M,
) -> f64
where
    S: SignatureSource + ?Sized,
    M: CoreAssignment + ?Sized,
{
    let n = threads.len();
    let mut total = 0.0;
    let mut internal = 0.0;
    for i in 0..n {
        for j in (i + 1)..n {
            let w = pair_weight(metric, threads[i], threads[j], weighted);
            total += w;
            let (ti, tj) = (threads[i].tid(), threads[j].tid());
            if mapping.core_of(ti) == mapping.core_of(tj) {
                internal += w;
            }
        }
    }
    if total <= f64::EPSILON {
        0.0
    } else {
        internal / total
    }
}

/// The migration-cost hysteresis gate: a challenger replaces the
/// incumbent only with real support in the vote window AND a predicted
/// gain that beats the switch cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Hysteresis {
    /// Minimum window votes a challenger needs.
    pub min_votes: u32,
    /// Minimum predicted gain (normalized) worth a migration.
    pub switch_cost: f64,
}

impl Hysteresis {
    /// Whether a challenger with `votes` support and `gain` predicted
    /// gain clears the gate.
    #[inline]
    pub fn should_switch(&self, votes: u32, gain: f64) -> bool {
        votes >= self.min_votes && gain > self.switch_cost
    }

    /// Signed margin by which `gain` clears (positive) or misses
    /// (negative) the switch cost.
    #[inline]
    pub fn margin(&self, gain: f64) -> f64 {
        gain - self.switch_cost
    }
}

/// Per-component gain evaluated during a multi-domain splice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComponentGain {
    /// Cache domains welded into this component (ascending).
    pub domains: Vec<usize>,
    /// Predicted gain of splicing this component's challenger cores in.
    pub gain: f64,
    /// Whether the component cleared the hysteresis gate and was
    /// committed.
    pub committed: bool,
}

/// Why one decision went the way it did: the control plane's per-decision
/// record, attached to `Map` replies behind a flag and streamed by
/// `loadgen --watch`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Explanation {
    /// Sequence number of the epoch that produced this decision.
    pub seq: u64,
    /// Decision reason, as its wire token (`Warmup`, `Held`, `Remap`, …).
    pub reason: String,
    /// Votes the window majority held.
    pub votes: u32,
    /// Live epochs in the window.
    pub window: u32,
    /// Best predicted gain evaluated this epoch (0 when no challenge ran).
    pub gain: f64,
    /// The configured switch cost the gain was gated against.
    pub switch_cost: f64,
    /// `gain - switch_cost`: how decisively the hysteresis gate resolved.
    pub margin: f64,
    /// Per-component gains on multi-domain machines (one flat entry
    /// otherwise, when a challenge was evaluated).
    pub components: Vec<ComponentGain>,
    /// Cache domains whose co-schedule was committed this epoch.
    pub domains_changed: Vec<usize>,
}

/// Half-open core ranges of each cache domain, from per-domain core
/// counts (cumulative sum).
pub fn domain_ranges(counts: &[usize]) -> Vec<std::ops::Range<usize>> {
    let mut ranges = Vec::with_capacity(counts.len());
    let mut start = 0;
    for &c in counts {
        ranges.push(start..start + c);
        start += c;
    }
    ranges
}

/// Domains holding at least one thread under `mapping`, ascending.
pub fn occupied_domains<M: CoreAssignment + ?Sized>(mapping: &M, counts: &[usize]) -> Vec<usize> {
    let ranges = domain_ranges(counts);
    (0..ranges.len())
        .filter(|&d| (0..mapping.len()).any(|t| ranges[d].contains(&mapping.core_of(t))))
        .collect()
}

/// Tiny union-find (path halving) over domain indices.
pub fn uf_find(parent: &mut [usize], mut x: usize) -> usize {
    while parent[x] != x {
        parent[x] = parent[parent[x]];
        x = parent[x];
    }
    x
}

/// Union the components of `a` and `b` (smaller root wins).
pub fn uf_union(parent: &mut [usize], a: usize, b: usize) {
    let (ra, rb) = (uf_find(parent, a), uf_find(parent, b));
    if ra != rb {
        parent[rb.max(ra)] = rb.min(ra);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal stand-alone signature source for kernel tests.
    struct View {
        tid: usize,
        occupancy: f64,
        last_core: Option<usize>,
        symbiosis: Vec<f64>,
        overlap: Vec<f64>,
    }

    impl SignatureSource for View {
        fn tid(&self) -> usize {
            self.tid
        }
        fn occupancy(&self) -> f64 {
            self.occupancy
        }
        fn last_core(&self) -> Option<usize> {
            self.last_core
        }
        fn interference_with(&self, j: usize) -> f64 {
            reciprocal_interference(self.symbiosis.get(j).copied().unwrap_or(0.0))
        }
        fn contested_with(&self, j: usize) -> f64 {
            self.overlap.get(j).copied().unwrap_or(0.0)
        }
    }

    struct Assign(Vec<usize>);

    impl CoreAssignment for Assign {
        fn core_of(&self, tid: usize) -> usize {
            self.0[tid]
        }
        fn len(&self) -> usize {
            self.0.len()
        }
    }

    fn view(tid: usize, occ: f64, sym: Vec<f64>, core: usize) -> View {
        let overlap = sym.iter().map(|s| 100.0 - s).collect();
        View {
            tid,
            occupancy: occ,
            last_core: Some(core),
            symbiosis: sym,
            overlap,
        }
    }

    #[test]
    fn reciprocal_clamps_below_one_half() {
        assert_eq!(reciprocal_interference(0.0), 2.0);
        assert_eq!(reciprocal_interference(0.49), 2.0);
        assert_eq!(reciprocal_interference(2.0), 0.5);
        assert_eq!(reciprocal_interference(8.0), 0.125);
    }

    #[test]
    fn missing_edges_match_the_metric() {
        assert_eq!(missing_edge(InterferenceMetric::ReciprocalSymbiosis), 2.0);
        assert_eq!(missing_edge(InterferenceMetric::Overlap), 0.0);
    }

    #[test]
    fn figure7_pair_weight_consolidates_both_directions() {
        // Mirrors the allocator's figure7_consolidation test: a → b is
        // I_a with core 1 = 1/8; b → a is I_b with core 0 = 1/2.
        let a = view(0, 10.0, vec![4.0, 8.0], 0);
        let b = view(1, 20.0, vec![2.0, 16.0], 1);
        let w = pair_weight(InterferenceMetric::ReciprocalSymbiosis, &a, &b, false);
        assert!((w - (1.0 / 8.0 + 1.0 / 2.0)).abs() < 1e-12);
        let ww = pair_weight(InterferenceMetric::ReciprocalSymbiosis, &a, &b, true);
        assert!((ww - (10.0 / 8.0 + 20.0 / 2.0)).abs() < 1e-12);
    }

    #[test]
    fn gain_prefers_the_mapping_that_internalizes_more() {
        // Thread 0 clashes with core 1's filter (where thread 1 runs)
        // and vice versa; threads 2 and 3 are benign everywhere. The
        // asymmetry matters: a thread hostile to *both* cores scores the
        // same cut from any balanced placement (the documented
        // cross-pairing degeneracy).
        let views = [
            view(0, 10.0, vec![100.0, 1.0], 0),
            view(1, 10.0, vec![1.0, 100.0], 1),
            view(2, 1.0, vec![100.0, 100.0], 0),
            view(3, 1.0, vec![100.0, 100.0], 1),
        ];
        let refs: Vec<&View> = views.iter().collect();
        let spread = Assign(vec![0, 1, 0, 1]); // hostile pair split
        let packed = Assign(vec![0, 0, 1, 1]); // hostile pair co-located
        let gain = predicted_gain(
            InterferenceMetric::ReciprocalSymbiosis,
            true,
            &refs,
            &spread,
            &packed,
        );
        assert!(gain > 0.0, "co-locating the hostile pair must gain: {gain}");
        // Symmetry: the reverse comparison is the exact negation.
        let loss = predicted_gain(
            InterferenceMetric::ReciprocalSymbiosis,
            true,
            &refs,
            &packed,
            &spread,
        );
        assert!((gain + loss).abs() < 1e-15);
        // And the absolute scores rank the same way.
        let f_packed = internalized_fraction(
            InterferenceMetric::ReciprocalSymbiosis,
            true,
            &refs,
            &packed,
        );
        let f_spread = internalized_fraction(
            InterferenceMetric::ReciprocalSymbiosis,
            true,
            &refs,
            &spread,
        );
        assert!(f_packed > f_spread);
        assert!(((f_packed - f_spread) - gain).abs() < 1e-12);
    }

    #[test]
    fn empty_or_degenerate_views_score_zero() {
        let refs: Vec<&View> = Vec::new();
        let m = Assign(vec![]);
        assert_eq!(
            predicted_gain(InterferenceMetric::Overlap, true, &refs, &m, &m),
            0.0
        );
        assert_eq!(
            internalized_fraction(InterferenceMetric::Overlap, true, &refs, &m),
            0.0
        );
    }

    #[test]
    fn multidomain_gates_cross_domain_pairs() {
        // Two domains of 2 cores each; threads 0/1 in domain 0, 2/3 in
        // domain 1. Cross-domain pairs contribute nothing.
        let views = [
            view(0, 1.0, vec![1.0, 1.0], 0),
            view(1, 1.0, vec![1.0, 1.0], 1),
            view(2, 1.0, vec![1.0, 1.0], 2),
            view(3, 1.0, vec![1.0, 1.0], 3),
        ];
        let refs: Vec<&View> = views.iter().collect();
        let ranges = domain_ranges(&[2, 2]);
        let inc = Assign(vec![0, 1, 2, 3]);
        let cha = Assign(vec![0, 0, 2, 3]); // co-locate 0 and 1 in domain 0
        let include_all = |_tid: usize| true;
        let g = predicted_gain_multidomain(
            InterferenceMetric::ReciprocalSymbiosis,
            false,
            &refs,
            &ranges,
            &inc,
            &cha,
            &include_all,
        );
        assert!(g > 0.0);
        // Restricting to the unchanged domain-1 component: no gain.
        let include_d1 = |tid: usize| tid >= 2;
        let g1 = predicted_gain_multidomain(
            InterferenceMetric::ReciprocalSymbiosis,
            false,
            &refs,
            &ranges,
            &inc,
            &cha,
            &include_d1,
        );
        assert_eq!(g1, 0.0);
    }

    #[test]
    fn hysteresis_gate_and_margin() {
        let h = Hysteresis {
            min_votes: 3,
            switch_cost: 0.02,
        };
        assert!(h.should_switch(3, 0.05));
        assert!(!h.should_switch(2, 0.05), "too few votes");
        assert!(!h.should_switch(5, 0.02), "gain must strictly beat cost");
        assert!((h.margin(0.05) - 0.03).abs() < 1e-15);
        assert!(h.margin(0.01) < 0.0);
    }

    #[test]
    fn domain_helpers() {
        let ranges = domain_ranges(&[2, 4, 2]);
        assert_eq!(ranges, vec![0..2, 2..6, 6..8]);
        let m = Assign(vec![0, 7]);
        assert_eq!(occupied_domains(&m, &[2, 4, 2]), vec![0, 2]);
        let mut parent = vec![0, 1, 2, 3];
        uf_union(&mut parent, 2, 3);
        uf_union(&mut parent, 0, 2);
        assert_eq!(uf_find(&mut parent, 3), 0);
        assert_eq!(uf_find(&mut parent, 1), 1);
    }
}
