//! Differential test for the deduplicated interference kernel: the
//! hardware's integer-count metric (`symbio_cbf::SignatureSample`), the
//! monitor's EWMA-smoothed metric (`ThreadView`), and the unified scalar
//! kernel (`symbio_eval::reciprocal_interference`) must agree on every
//! input — one definition, three call sites. Before the unification the
//! clamp lived twice (integer `== 0` in cbf, float `< 0.5` in machine);
//! the proptest pins that for integer counts the two conditions are the
//! same predicate, so the shared kernel changes no observable value.

use proptest::prelude::*;
use symbio_cbf::SignatureSample;
use symbio_machine::ThreadView;

fn sample(symbiosis: Vec<u32>) -> SignatureSample {
    SignatureSample {
        core: 0,
        occupancy: 8,
        overlap: vec![0; symbiosis.len()],
        filter_len: 256,
        symbiosis,
    }
}

fn view(symbiosis: Vec<f64>) -> ThreadView {
    ThreadView {
        tid: 0,
        pid: 0,
        name: "p0".to_string(),
        occupancy: 8.0,
        overlap: vec![0.0; symbiosis.len()],
        symbiosis,
        last_occupancy: 8,
        last_core: Some(0),
        samples: 1,
        filter_len: 256,
        l2_miss_rate: 0.0,
        l2_misses: 0,
        retired: 0,
    }
}

proptest! {
    /// Integer hardware counts: the cbf sample, a ThreadView smoothed to
    /// the same value, and the raw kernel agree bit-for-bit.
    #[test]
    fn integer_counts_agree_across_all_three_sites(counts in proptest::collection::vec(0u32..512, 1..8)) {
        let s = sample(counts.clone());
        let v = view(counts.iter().map(|&c| f64::from(c)).collect());
        for (j, &c) in counts.iter().enumerate() {
            let kernel = symbio_eval::reciprocal_interference(f64::from(c));
            prop_assert_eq!(s.interference_with(j).to_bits(), kernel.to_bits());
            prop_assert_eq!(v.interference_with(j).to_bits(), kernel.to_bits());
            // The clamp fires exactly on zero counts and nowhere else.
            if c == 0 {
                prop_assert_eq!(kernel, 2.0);
            } else {
                prop_assert_eq!(kernel, 1.0 / f64::from(c));
            }
        }
    }

    /// Smoothed float symbiosis: the ThreadView metric is the kernel,
    /// with the sub-0.5 region clamped like an exact zero. Quarter-
    /// resolution values in [0, 512) keep the sub-0.5 clamp region
    /// populated (0.0 and 0.25 both land below the threshold).
    #[test]
    fn smoothed_floats_agree_with_the_kernel(quarters in proptest::collection::vec(0u32..2048, 1..8)) {
        let vals: Vec<f64> = quarters.iter().map(|&q| f64::from(q) / 4.0).collect();
        let v = view(vals.clone());
        for (j, &s) in vals.iter().enumerate() {
            let kernel = symbio_eval::reciprocal_interference(s);
            prop_assert_eq!(v.interference_with(j).to_bits(), kernel.to_bits());
            if s < 0.5 {
                prop_assert_eq!(kernel, 2.0);
            }
        }
        // Out-of-range cores read as zero symbiosis: the clamp.
        prop_assert_eq!(v.interference_with(vals.len() + 3), 2.0);
    }
}
