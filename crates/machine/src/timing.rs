//! Cycle-accounting model.

use serde::{Deserialize, Serialize};

/// Latency parameters (cycles). DRAM latency comes from the
/// [`symbio_cache::Dram`] queue model, not from here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingModel {
    /// Total cost of a memory instruction that hits the L1.
    pub l1_hit: u64,
    /// Additional cost of an L1 miss that hits the L2.
    pub l2_hit_extra: u64,
    /// Fraction of the DRAM latency that actually stalls the core, as a
    /// rational `num/den`. Out-of-order execution, hardware prefetch and
    /// memory-level parallelism on the Core 2 Duo hide most of a miss; the
    /// DRAM *channel* is still occupied for the full transfer (bandwidth
    /// contention is unaffected by this knob).
    pub mem_stall_num: u64,
    /// Denominator of the stall fraction.
    pub mem_stall_den: u64,
    /// Direct cost of an OS context switch (register/TLB work); the
    /// indirect cost — cache warm-up — emerges from the cache model.
    pub context_switch: u64,
}

impl TimingModel {
    /// Default model: 1-cycle L1, +14 L2, 40 % exposed miss stall,
    /// 5k-cycle context switch.
    pub fn default_model() -> Self {
        TimingModel {
            l1_hit: 1,
            l2_hit_extra: 14,
            mem_stall_num: 2,
            mem_stall_den: 5,
            context_switch: 5_000,
        }
    }

    /// A fully-blocking in-order variant (no latency hiding) for ablation.
    pub fn blocking_model() -> Self {
        TimingModel {
            mem_stall_num: 1,
            mem_stall_den: 1,
            ..TimingModel::default_model()
        }
    }

    /// Cost of a memory instruction serviced at `level`, where
    /// `dram_cycles` is the DRAM queue+latency component for misses.
    pub fn mem_cost(&self, level: symbio_cache::AccessLevel, dram_cycles: u64) -> u64 {
        match level {
            symbio_cache::AccessLevel::L1 => self.l1_hit,
            symbio_cache::AccessLevel::L2 => self.l1_hit + self.l2_hit_extra,
            symbio_cache::AccessLevel::Memory => {
                self.l1_hit
                    + self.l2_hit_extra
                    + dram_cycles * self.mem_stall_num / self.mem_stall_den
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbio_cache::AccessLevel;

    #[test]
    fn costs_are_monotone_in_depth() {
        let t = TimingModel::default_model();
        let l1 = t.mem_cost(AccessLevel::L1, 0);
        let l2 = t.mem_cost(AccessLevel::L2, 0);
        let mem = t.mem_cost(AccessLevel::Memory, 200);
        assert!(l1 < l2 && l2 < mem);
        assert_eq!(l1, 1);
        assert_eq!(l2, 15);
        assert_eq!(mem, 15 + 200 * 2 / 5);
    }

    #[test]
    fn dram_component_added_only_on_miss() {
        let t = TimingModel::default_model();
        assert_eq!(t.mem_cost(AccessLevel::L2, 0), 15);
        assert_eq!(t.mem_cost(AccessLevel::Memory, 230), 15 + 230 * 2 / 5);
    }

    #[test]
    fn blocking_model_exposes_full_latency() {
        let t = TimingModel::blocking_model();
        assert_eq!(t.mem_cost(AccessLevel::Memory, 200), 215);
    }
}
