//! Scheduler-visible signature snapshots — the wire type of the online
//! subsystem.
//!
//! The paper's deployment loop is *online*: the OS reads the signature
//! unit at every context switch and a user-level monitor invokes the
//! allocator every 100 ms. [`SigSnapshot`] is one tick of that stream —
//! everything [`Machine::query_views`] reports, stamped with a group key,
//! a sequence number and the machine time — serializable so it can cross
//! a socket to `symbiod` (the signature-serving daemon) or be replayed
//! from a recorded trace into the `symbio-online` decision engine.

use crate::machine::Machine;
use crate::thread::{ProcView, ThreadView};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Refusal to export a snapshot that could not be a valid vote — the
/// machine currently has no runnable processes, so the snapshot would
/// carry zero threads and the online engine would either reject it
/// (wasting an epoch) or, worse, tally it as an empty vote.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportError {
    /// The process-group key the export was asked to stamp.
    pub group: String,
}

impl fmt::Display for ExportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cannot export snapshot for group `{}`: machine has no runnable processes",
            self.group
        )
    }
}

impl std::error::Error for ExportError {}

/// One epoch of scheduler-visible signature state for a process group.
///
/// Carries the same per-process views the in-process profiling loop gets
/// from [`Machine::query_views`], so allocation policies consume a
/// replayed snapshot exactly as they would a live query.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SigSnapshot {
    /// Process-group identifier: the routing key under which the online
    /// engine accumulates this stream's epochs.
    pub group: String,
    /// Monotonic sequence number within the group's stream.
    pub seq: u64,
    /// Machine frontier time when the snapshot was taken (cycles).
    pub now_cycles: u64,
    /// Total cores of the exporting machine (thread `last_core` labels
    /// are global core ids in `0..cores`).
    pub cores: usize,
    /// Per-domain core counts of the exporting machine's cache topology.
    /// A thread's per-core signature vectors are indexed by *domain-local*
    /// core within the domain of its `last_core`. An empty list means one
    /// domain spanning every core (the legacy single-L2 shape).
    pub domains: Vec<usize>,
    /// Per-process signature views, pid order.
    pub procs: Vec<ProcView>,
}

impl SigSnapshot {
    /// Flat thread views, tid order (the shape allocation policies and
    /// interference graphs consume).
    pub fn threads(&self) -> Vec<&ThreadView> {
        let mut ts: Vec<&ThreadView> = self.procs.iter().flat_map(|p| p.threads.iter()).collect();
        ts.sort_by_key(|t| t.tid);
        ts
    }

    /// Number of threads across all processes.
    pub fn thread_count(&self) -> usize {
        self.procs.iter().map(|p| p.threads.len()).sum()
    }

    /// Mean smoothed occupancy weight across threads — the scalar the
    /// online engine's phase-change detector tracks between epochs.
    pub fn mean_occupancy(&self) -> f64 {
        let n = self.thread_count();
        if n == 0 {
            return 0.0;
        }
        let sum: f64 = self
            .procs
            .iter()
            .flat_map(|p| p.threads.iter())
            .map(|t| t.occupancy)
            .sum();
        sum / n as f64
    }

    /// Effective per-domain core counts: the explicit `domains` list, or
    /// one all-core domain when the list is empty (legacy shape).
    pub fn domain_counts(&self) -> Vec<usize> {
        if self.domains.is_empty() {
            vec![self.cores]
        } else {
            self.domains.clone()
        }
    }

    /// Cache domain a thread's vectors are indexed in, given its global
    /// `last_core` label (domain 0 when the thread is unsampled).
    pub fn domain_of_core(&self, core: usize) -> usize {
        let mut start = 0;
        for (d, &c) in self.domain_counts().iter().enumerate() {
            start += c;
            if core < start {
                return d;
            }
        }
        0
    }

    /// Structural validity for wire-crossing snapshots: at least one core,
    /// a domain list summing to `cores`, at least one thread, and
    /// contiguous tids from 0 (what the allocation policies assert).
    /// Returns a human-readable complaint for the daemon to wrap in a
    /// typed protocol error instead of panicking.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("snapshot has zero cores".to_string());
        }
        let counts = self.domain_counts();
        if counts.contains(&0) {
            return Err("snapshot topology has a zero-core domain".to_string());
        }
        if counts.iter().sum::<usize>() != self.cores {
            return Err(format!(
                "snapshot topology {counts:?} does not sum to {} cores",
                self.cores
            ));
        }
        let ts = self.threads();
        if ts.is_empty() {
            return Err(format!(
                "snapshot for group `{}` has no threads",
                self.group
            ));
        }
        for (i, t) in ts.iter().enumerate() {
            if t.tid != i {
                return Err(format!(
                    "thread ids must be contiguous from 0 (position {i} holds tid {})",
                    t.tid
                ));
            }
            if t.last_core.is_some_and(|c| c >= self.cores) {
                return Err(format!(
                    "tid {} carries last_core {:?} on a {}-core machine",
                    t.tid, t.last_core, self.cores
                ));
            }
            // A thread the signature unit has not sampled yet carries
            // empty EWMA vectors; policies treat missing entries as zero.
            // Sampled vectors are indexed by domain-local core, so their
            // length is the thread's domain's core count.
            let dcores = counts[self.domain_of_core(t.last_core.unwrap_or(0))];
            let bad = |v: &[f64]| !v.is_empty() && v.len() != dcores;
            if bad(&t.symbiosis) || bad(&t.overlap) {
                return Err(format!(
                    "tid {} carries {} symbiosis / {} overlap entries for a {dcores}-core domain",
                    t.tid,
                    t.symbiosis.len(),
                    t.overlap.len(),
                ));
            }
            // Occupancy-impossible values: a non-finite or negative
            // occupancy (or EWMA entry) would poison the engine's drift
            // detector and vote window forever — NaN propagates through
            // every mean it touches. Real signature hardware can only
            // report non-negative finite line counts.
            if !t.occupancy.is_finite() || t.occupancy < 0.0 {
                return Err(format!(
                    "tid {} carries impossible occupancy {}",
                    t.tid, t.occupancy
                ));
            }
            let poisoned = |v: &[f64]| v.iter().any(|x| !x.is_finite() || *x < 0.0);
            if poisoned(&t.symbiosis) || poisoned(&t.overlap) {
                return Err(format!(
                    "tid {} carries non-finite or negative signature entries",
                    t.tid
                ));
            }
        }
        Ok(())
    }
}

impl Machine {
    /// Export the current scheduler-visible state as a [`SigSnapshot`] —
    /// the online analogue of [`Machine::query_views`], feeding the wire
    /// type consumed by `symbio-online` / `symbiod`. Refuses to export a
    /// zero-process group ([`ExportError`]): such a snapshot carries no
    /// threads, and the online engine must never tally it as a vote.
    pub fn export_snapshot(&self, group: &str, seq: u64) -> Result<SigSnapshot, ExportError> {
        let procs = self.query_views();
        if procs.iter().all(|p| p.threads.is_empty()) {
            return Err(ExportError {
                group: group.to_string(),
            });
        }
        Ok(SigSnapshot {
            group: group.to_string(),
            seq,
            now_cycles: self.now(),
            cores: self.config().cores,
            domains: self.config().topology.domain_counts(),
            procs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Mapping;

    fn view(tid: usize, occ: f64) -> ThreadView {
        ThreadView {
            tid,
            pid: tid,
            name: format!("p{tid}"),
            occupancy: occ,
            symbiosis: vec![1.0, 2.0],
            overlap: vec![3.0, 4.0],
            last_occupancy: occ as u32,
            last_core: Some(tid % 2),
            samples: 5,
            filter_len: 64,
            l2_miss_rate: 0.25,
            l2_misses: 10,
            retired: 1000,
        }
    }

    fn snapshot() -> SigSnapshot {
        SigSnapshot {
            group: "mix-a".to_string(),
            seq: 7,
            now_cycles: 5_000_000,
            cores: 2,
            domains: vec![2],
            procs: (0..4)
                .map(|pid| ProcView {
                    pid,
                    name: format!("p{pid}"),
                    threads: vec![view(pid, 10.0 * (pid + 1) as f64)],
                })
                .collect(),
        }
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let s = snapshot();
        let text = serde_json::to_string(&s).unwrap();
        let back: SigSnapshot = serde_json::from_str(&text).unwrap();
        assert_eq!(back.group, s.group);
        assert_eq!(back.seq, s.seq);
        assert_eq!(back.now_cycles, s.now_cycles);
        assert_eq!(back.cores, s.cores);
        assert_eq!(back.procs.len(), s.procs.len());
        let (a, b) = (&back.procs[2].threads[0], &s.procs[2].threads[0]);
        assert_eq!(a.tid, b.tid);
        assert_eq!(a.symbiosis, b.symbiosis);
        assert_eq!(a.overlap, b.overlap);
        assert_eq!(a.last_core, b.last_core);
        assert_eq!(a.l2_misses, b.l2_misses);
    }

    #[test]
    fn mapping_roundtrips_through_json() {
        let m = Mapping::new(vec![0, 1, 1, 0]);
        let text = serde_json::to_string(&m).unwrap();
        let back: Mapping = serde_json::from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn mean_occupancy_averages_threads() {
        let s = snapshot();
        assert!((s.mean_occupancy() - 25.0).abs() < 1e-12);
        assert_eq!(s.thread_count(), 4);
        assert_eq!(s.threads().len(), 4);
    }

    #[test]
    fn validate_rejects_malformed_snapshots() {
        let mut s = snapshot();
        assert!(s.validate().is_ok());
        s.cores = 0;
        assert!(s.validate().unwrap_err().contains("zero cores"));
        let mut s = snapshot();
        s.procs[1].threads[0].tid = 9;
        assert!(s.validate().unwrap_err().contains("contiguous"));
        let mut s = snapshot();
        s.procs[0].threads[0].symbiosis.pop();
        assert!(s.validate().unwrap_err().contains("symbiosis"));
        let mut s = snapshot();
        s.procs.clear();
        assert!(s.validate().unwrap_err().contains("no threads"));
    }

    #[test]
    fn validate_understands_domains() {
        // 2x2 machine: threads on cores 2/3 sit in domain 1 and carry
        // 2-entry (domain-local) vectors even though the machine has 4
        // cores.
        let mut s = snapshot();
        s.cores = 4;
        s.domains = vec![2, 2];
        for (i, p) in s.procs.iter_mut().enumerate() {
            p.threads[0].last_core = Some(i % 4);
        }
        assert!(s.validate().is_ok(), "{:?}", s.validate());
        assert_eq!(s.domain_counts(), vec![2, 2]);
        assert_eq!(s.domain_of_core(3), 1);

        // Domain list must sum to the core count.
        let mut s2 = s.clone();
        s2.domains = vec![2, 1];
        assert!(s2.validate().unwrap_err().contains("sum to"));
        let mut s3 = s.clone();
        s3.domains = vec![4, 0];
        assert!(s3.validate().unwrap_err().contains("zero-core domain"));
        // A last_core label outside the machine is rejected.
        let mut s4 = s.clone();
        s4.procs[0].threads[0].last_core = Some(9);
        assert!(s4.validate().unwrap_err().contains("last_core"));
        // Empty list means one machine-wide domain: 2-entry vectors on a
        // 4-core machine are then a length mismatch.
        let mut s5 = s.clone();
        s5.domains = Vec::new();
        assert!(s5.validate().unwrap_err().contains("symbiosis"));
    }

    #[test]
    fn validate_rejects_impossible_occupancy() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            let mut s = snapshot();
            s.procs[0].threads[0].occupancy = bad;
            assert!(
                s.validate().unwrap_err().contains("impossible occupancy"),
                "occupancy {bad} must be rejected"
            );
        }
        let mut s = snapshot();
        s.procs[2].threads[0].overlap[1] = f64::NAN;
        assert!(s.validate().unwrap_err().contains("non-finite"));
        let mut s = snapshot();
        s.procs[2].threads[0].symbiosis[0] = -5.0;
        assert!(s.validate().unwrap_err().contains("negative"));
    }

    #[test]
    fn exporting_a_zero_process_group_is_refused() {
        use crate::config::MachineConfig;
        let machine = Machine::new(MachineConfig::scaled_core2duo(1));
        let err = machine.export_snapshot("empty", 0).unwrap_err();
        assert_eq!(err.group, "empty");
        assert!(err.to_string().contains("no runnable processes"));
    }
}
