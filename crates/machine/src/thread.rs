//! Threads, processes and their signature contexts.

use serde::{Deserialize, Serialize};
use symbio_cbf::SignatureSample;
use symbio_workloads::WorkloadGen;

/// Exponential-moving-average weight for signature smoothing. The paper
/// keeps only the latest sample; we retain that (`last`) and additionally an
/// EWMA, which allocation policies use because a single quantum's RBV is
/// noisy at simulation scale.
const EWMA_ALPHA: f64 = 0.3;

/// The paper's per-process `(2 + N)`-entry context structure (Section 3.2):
/// last core, occupancy weight, and symbiosis with each core — maintained
/// here per *thread* so the multi-threaded two-phase algorithm (Section
/// 3.3.4) can work at thread granularity.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SigContext {
    /// Core the thread last ran on.
    pub last_core: Option<usize>,
    /// Latest RBV occupancy sample.
    pub last_occupancy: u32,
    /// Latest symbiosis vector.
    pub last_symbiosis: Vec<u32>,
    /// Smoothed occupancy.
    pub occupancy_ewma: f64,
    /// Smoothed symbiosis per core.
    pub symbiosis_ewma: Vec<f64>,
    /// Latest contested-capacity (overlap) vector.
    pub last_overlap: Vec<u32>,
    /// Smoothed contested capacity per core.
    pub overlap_ewma: Vec<f64>,
    /// Number of samples folded in.
    pub samples: u64,
    /// Filter width (for normalisation).
    pub filter_len: usize,
}

impl SigContext {
    /// Fold in a context-switch sample. Reuses the context's own vectors
    /// (clear + extend), so steady-state updates perform no allocation.
    pub fn update(&mut self, sample: &SignatureSample) {
        self.last_core = Some(sample.core);
        self.last_occupancy = sample.occupancy;
        self.last_symbiosis.clear();
        self.last_symbiosis.extend_from_slice(&sample.symbiosis);
        self.last_overlap.clear();
        self.last_overlap.extend_from_slice(&sample.overlap);
        self.filter_len = sample.filter_len;
        if self.samples == 0 {
            self.occupancy_ewma = f64::from(sample.occupancy);
            self.symbiosis_ewma.clear();
            self.symbiosis_ewma
                .extend(sample.symbiosis.iter().map(|&s| f64::from(s)));
            self.overlap_ewma.clear();
            self.overlap_ewma
                .extend(sample.overlap.iter().map(|&s| f64::from(s)));
        } else {
            self.occupancy_ewma =
                EWMA_ALPHA * f64::from(sample.occupancy) + (1.0 - EWMA_ALPHA) * self.occupancy_ewma;
            for (e, &s) in self.symbiosis_ewma.iter_mut().zip(&sample.symbiosis) {
                *e = EWMA_ALPHA * f64::from(s) + (1.0 - EWMA_ALPHA) * *e;
            }
            for (e, &s) in self.overlap_ewma.iter_mut().zip(&sample.overlap) {
                *e = EWMA_ALPHA * f64::from(s) + (1.0 - EWMA_ALPHA) * *e;
            }
        }
        self.samples += 1;
    }
}

/// A simulated thread (a single-threaded process has exactly one).
#[derive(Debug)]
pub struct Thread {
    /// Flat thread id (index into the machine's thread table).
    pub tid: usize,
    /// Owning process id.
    pub pid: usize,
    /// Workload generator.
    pub gen: WorkloadGen,
    /// Base seed used to derive restart generators.
    pub base_seed: u64,
    /// Instructions retired in the current run.
    pub retired: u64,
    /// Instructions per complete run.
    pub work: u64,
    /// Cycles this thread has actually executed (user time).
    pub user_cycles: u64,
    /// Completed runs.
    pub completions: u32,
    /// User cycles at first completion.
    pub first_completion_user: Option<u64>,
    /// Wall-clock (core clock) at first completion.
    pub first_completion_wall: Option<u64>,
    /// Whether this thread's completion gates the experiment (Dom0 and
    /// other background services do not).
    pub counts_for_completion: bool,
    /// Signature context updated at context switches.
    pub sig: SigContext,
    /// L2 misses attributed to this thread.
    pub l2_misses: u64,
    /// L2 accesses attributed to this thread.
    pub l2_accesses: u64,
    /// Memory instructions issued.
    pub mem_ops: u64,
    /// Fractional-tax accumulator for the hypervisor instruction tax.
    pub tax_accum: u64,
    /// One-entry translation memo: the virtual page of the thread's last
    /// translated access. Page translation is a pure hash, so caching the
    /// last pair is output-invariant; `0` means empty (virtual pages
    /// always carry the thread's nonzero address-space bits).
    pub tlb_vpage: u64,
    /// Cached frame number for [`Thread::tlb_vpage`].
    pub tlb_pfn: u64,
}

impl Thread {
    /// Create a thread around a generator.
    pub fn new(
        tid: usize,
        pid: usize,
        gen: WorkloadGen,
        base_seed: u64,
        counts_for_completion: bool,
    ) -> Self {
        let work = gen.work();
        Thread {
            tid,
            pid,
            gen,
            base_seed,
            retired: 0,
            work,
            user_cycles: 0,
            completions: 0,
            first_completion_user: None,
            first_completion_wall: None,
            counts_for_completion,
            sig: SigContext::default(),
            l2_misses: 0,
            l2_accesses: 0,
            mem_ops: 0,
            tax_accum: 0,
            tlb_vpage: 0,
            tlb_pfn: 0,
        }
    }

    /// Whether the current run is complete.
    #[inline]
    pub fn run_complete(&self) -> bool {
        self.retired >= self.work
    }

    /// Miss rate over issued memory ops (the event-counter metric).
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.l2_accesses as f64
        }
    }
}

/// Read-only view of a thread exposed through the "syscall" interface.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThreadView {
    /// Flat thread id.
    pub tid: usize,
    /// Owning process.
    pub pid: usize,
    /// Workload name.
    pub name: String,
    /// Smoothed occupancy weight.
    pub occupancy: f64,
    /// Smoothed symbiosis per core.
    pub symbiosis: Vec<f64>,
    /// Smoothed contested capacity (overlap) per core; see
    /// [`symbio_cbf::SignatureSample::overlap`].
    pub overlap: Vec<f64>,
    /// Latest raw sample occupancy.
    pub last_occupancy: u32,
    /// Core last run on.
    pub last_core: Option<usize>,
    /// Signature samples observed.
    pub samples: u64,
    /// Filter width.
    pub filter_len: usize,
    /// L2 miss rate (perf-counter metric, for the baseline scheduler).
    pub l2_miss_rate: f64,
    /// L2 misses (absolute).
    pub l2_misses: u64,
    /// Instructions retired in the current run.
    pub retired: u64,
}

impl ThreadView {
    /// The paper's interference metric with core `j` (reciprocal smoothed
    /// symbiosis, clamped like [`SignatureSample::interference_with`] —
    /// one shared kernel in `symbio_eval`).
    pub fn interference_with(&self, j: usize) -> f64 {
        symbio_eval::reciprocal_interference(self.symbiosis.get(j).copied().unwrap_or(0.0))
    }

    /// Contested capacity with core `j` (the overlap interference metric).
    pub fn contested_with(&self, j: usize) -> f64 {
        self.overlap.get(j).copied().unwrap_or(0.0)
    }
}

impl symbio_eval::SignatureSource for ThreadView {
    fn tid(&self) -> usize {
        self.tid
    }
    fn occupancy(&self) -> f64 {
        self.occupancy
    }
    fn last_core(&self) -> Option<usize> {
        self.last_core
    }
    fn interference_with(&self, j: usize) -> f64 {
        ThreadView::interference_with(self, j)
    }
    fn contested_with(&self, j: usize) -> f64 {
        ThreadView::contested_with(self, j)
    }
}

/// Read-only view of a process (its threads grouped).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcView {
    /// Process id.
    pub pid: usize,
    /// Workload name.
    pub name: String,
    /// Thread views.
    pub threads: Vec<ThreadView>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(core: usize, occ: u32, sym: Vec<u32>) -> SignatureSample {
        let overlap = vec![0; sym.len()];
        SignatureSample {
            core,
            occupancy: occ,
            symbiosis: sym,
            overlap,
            filter_len: 4096,
        }
    }

    #[test]
    fn first_sample_initialises_ewma() {
        let mut c = SigContext::default();
        c.update(&sample(1, 100, vec![10, 20]));
        assert_eq!(c.occupancy_ewma, 100.0);
        assert_eq!(c.symbiosis_ewma, vec![10.0, 20.0]);
        assert_eq!(c.last_core, Some(1));
        assert_eq!(c.samples, 1);
    }

    #[test]
    fn ewma_smooths_subsequent_samples() {
        let mut c = SigContext::default();
        c.update(&sample(0, 100, vec![10]));
        c.update(&sample(0, 0, vec![0]));
        assert!((c.occupancy_ewma - 70.0).abs() < 1e-9);
        assert!((c.symbiosis_ewma[0] - 7.0).abs() < 1e-9);
        assert_eq!(c.last_occupancy, 0, "last keeps the raw value");
    }

    #[test]
    fn interference_clamps_zero_symbiosis() {
        let v = ThreadView {
            tid: 0,
            pid: 0,
            name: "x".into(),
            occupancy: 5.0,
            symbiosis: vec![0.0, 4.0],
            overlap: vec![7.0, 3.0],
            last_occupancy: 5,
            last_core: None,
            samples: 1,
            filter_len: 64,
            l2_miss_rate: 0.0,
            l2_misses: 0,
            retired: 0,
        };
        assert_eq!(v.interference_with(0), 2.0);
        assert!((v.interference_with(1) - 0.25).abs() < 1e-12);
        assert_eq!(v.interference_with(9), 2.0, "missing core treated as 0");
        assert_eq!(v.contested_with(0), 7.0);
        assert_eq!(v.contested_with(9), 0.0);
    }

    #[test]
    fn miss_rate_guards_divzero() {
        use symbio_workloads::{Pattern, WorkloadSpec};
        let spec = WorkloadSpec {
            name: "t".into(),
            pattern: Pattern::RandomUniform { region: 4096 },
            compute_gap: (0, 0),
            write_ratio: 0.0,
            work: 10,
        };
        let t = Thread::new(0, 0, spec.instantiate(1), 1, true);
        assert_eq!(t.l2_miss_rate(), 0.0);
        assert!(!t.run_complete());
    }
}
