//! Machine configuration.

use crate::timing::TimingModel;
use serde::{Deserialize, Serialize};
use symbio_cache::{CacheGeometry, ReplacementPolicy, Topology};
use symbio_cbf::{HashKind, Sampling, SignatureConfig};

/// Virtualization-layer model (Section 4.2's Xen setup).
///
/// Three effects distinguish VM execution from native in the paper's
/// results and are modelled here:
///
/// 1. a per-instruction hypervisor tax (shadow paging / vm exits);
/// 2. costlier, more frequent vcpu switches (hypervisor quantum < OS
///    quantum);
/// 3. Dom0 control-domain activity polluting the shared L2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VirtConfig {
    /// Extra cycles on every context switch (VM entry/exit, vcpu state).
    pub vm_switch_extra: u64,
    /// Per-instruction tax as a rational `num/den` (e.g. 2/25 = 8 %).
    pub tax_num: u64,
    /// Denominator of the tax.
    pub tax_den: u64,
    /// Hypervisor scheduling quantum (cycles); typically shorter than the
    /// native OS quantum.
    pub quantum: u64,
    /// Whether to run a Dom0 background service workload.
    pub dom0: bool,
}

impl VirtConfig {
    /// Defaults approximating Xen on the scaled machine: 8 % instruction
    /// tax, 20k-cycle VM switches, a hypervisor quantum shorter than the
    /// native OS quantum, Dom0 on.
    pub fn default_model() -> Self {
        VirtConfig {
            vm_switch_extra: 20_000,
            tax_num: 2,
            tax_den: 25,
            quantum: 1_500_000,
            dom0: true,
        }
    }
}

/// Full description of a simulated machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Number of cores (must equal the topology's total core count; see
    /// [`MachineConfig::validate`]).
    pub cores: usize,
    /// Cache-domain layout: which cores share which L2.
    pub topology: Topology,
    /// Per-core L1 geometry.
    pub l1: CacheGeometry,
    /// L2 geometry (the shared one, or each private one).
    pub l2: CacheGeometry,
    /// Replacement policy for both levels.
    pub policy: ReplacementPolicy,
    /// DRAM `(base_latency, service_interval)` cycles.
    pub dram: (u64, u64),
    /// Latency model.
    pub timing: TimingModel,
    /// OS scheduling quantum in cycles.
    pub quantum: u64,
    /// Attach the signature unit? (`None` = phase-2 measurement machine.)
    pub signature: Option<SigOptions>,
    /// Virtualize? (`None` = native.)
    pub virt: Option<VirtConfig>,
    /// Model page-granularity virtual→physical translation: each
    /// process's 4 KiB virtual pages are scattered pseudo-randomly across
    /// the physical space, as a real OS's page allocator does. Without
    /// this, synthetic processes occupy contiguous physical slabs whose
    /// cache-set/filter-index usage is artificially structured, which
    /// distorts both contention and the signature's collision statistics.
    pub paging: bool,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Stepping engine selector. `1` (the default everywhere) runs the
    /// classic coupled engine — one global frontier, one shared DRAM
    /// channel, one jitter stream — whose outputs are pinned bit-for-bit
    /// by the golden digests. `>= 2` selects the decomposed engine:
    /// cache domains step independently on up to `step_threads` scoped
    /// worker threads, each with its own DRAM channel and jitter stream,
    /// and results are merged in domain order. Decomposed output depends
    /// only on the domain decomposition, never on how many workers
    /// actually ran, so any two values `>= 2` are bit-identical.
    pub step_threads: usize,
}

/// Signature-unit options that are not derivable from the cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SigOptions {
    /// Counter width in bits.
    pub counter_bits: u32,
    /// Hash function.
    pub hash: HashKind,
    /// Set sampling.
    pub sampling: Sampling,
}

impl SigOptions {
    /// Paper defaults: 3-bit counters, XOR hash, full sampling.
    pub fn default_options() -> Self {
        SigOptions {
            counter_bits: 3,
            hash: HashKind::Xor,
            sampling: Sampling::FULL,
        }
    }
}

impl MachineConfig {
    /// The 1/16-scale Core 2 Duo used by default in experiments: 2 cores,
    /// 8 KiB L1s, shared 256 KiB 16-way L2.
    ///
    /// The quantum is sized so that a full L2 refill after a context switch
    /// (~4096 lines x ~56 cycles) costs under ~10 % of the quantum, matching
    /// the real machine's warm-up-to-quantum ratio (Figure 3(a) shows < 10 %
    /// same-core degradation).
    pub fn scaled_core2duo(seed: u64) -> Self {
        MachineConfig {
            cores: 2,
            topology: Topology::shared_l2(2),
            l1: CacheGeometry::scaled_l1(),
            l2: CacheGeometry::scaled_l2(),
            policy: ReplacementPolicy::Lru,
            dram: (140, 25),
            timing: TimingModel::default_model(),
            quantum: 2_500_000,
            signature: Some(SigOptions::default_options()),
            virt: None,
            paging: true,
            seed,
            step_threads: 1,
        }
    }

    /// The scaled P4 Xeon SMP control machine: private L2 per core
    /// (128 KiB 8-way — half the shared capacity each, mirroring the real
    /// machines' 2 MiB-private vs 4 MiB-shared relation).
    pub fn scaled_p4_smp(seed: u64) -> Self {
        MachineConfig {
            topology: Topology::private_l2(2),
            l2: CacheGeometry::new(128 << 10, 8, 64),
            ..MachineConfig::scaled_core2duo(seed)
        }
    }

    /// A multi-domain machine: `domains` cache domains of two cores each,
    /// every domain carrying the scaled Core-2-Duo L2. The 1-domain case
    /// is exactly [`MachineConfig::scaled_core2duo`].
    pub fn scaled_multidomain(seed: u64, domains: usize) -> Self {
        MachineConfig {
            cores: 2 * domains,
            topology: Topology::uniform(domains, 2),
            ..MachineConfig::scaled_core2duo(seed)
        }
    }

    /// Full-size (4 MiB L2) geometry for paper-literal runs.
    pub fn full_core2duo(seed: u64) -> Self {
        MachineConfig {
            l1: CacheGeometry::new(32 << 10, 8, 64),
            l2: CacheGeometry::core2duo_l2(),
            ..MachineConfig::scaled_core2duo(seed)
        }
    }

    /// Scaled machine virtualized under the default Xen model.
    pub fn scaled_vm(seed: u64) -> Self {
        MachineConfig {
            virt: Some(VirtConfig::default_model()),
            ..MachineConfig::scaled_core2duo(seed)
        }
    }

    /// Derive the [`SignatureConfig`] for a `domain_cores`-core filter
    /// bank over the configured L2 geometry, if the unit is enabled.
    pub fn signature_config_for(&self, domain_cores: usize) -> Option<SignatureConfig> {
        self.signature.map(|s| SignatureConfig {
            cores: domain_cores,
            sets: self.l2.sets(),
            ways: self.l2.ways,
            line_shift: self.l2.line_shift(),
            counter_bits: s.counter_bits,
            hash: s.hash,
            sampling: s.sampling,
        })
    }

    /// Derive the machine-wide [`SignatureConfig`] (one bank spanning all
    /// cores — meaningful on single-domain machines), if enabled.
    pub fn signature_config(&self) -> Option<SignatureConfig> {
        self.signature_config_for(self.cores)
    }

    /// Structural validity: at least one core, and a topology whose
    /// per-domain core counts sum to `cores`. Returns a human-readable
    /// complaint so callers (`ExperimentConfig` building, the serving
    /// layer) can surface a typed validation error instead of letting an
    /// inconsistent machine panic downstream.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("machine must have at least one core".to_string());
        }
        if self.step_threads == 0 {
            return Err("step_threads must be at least 1 (1 = serial engine)".to_string());
        }
        let topo_cores = self.topology.cores();
        if topo_cores != self.cores {
            return Err(format!(
                "topology domains {:?} sum to {topo_cores} cores, but the machine declares {}",
                self.topology.domain_counts(),
                self.cores
            ));
        }
        Ok(())
    }

    /// The effective scheduling quantum (hypervisor quantum when
    /// virtualized).
    pub fn effective_quantum(&self) -> u64 {
        self.virt.map_or(self.quantum, |v| v.quantum)
    }

    /// Disable the signature unit (phase-2 machine), preserving the rest.
    pub fn without_signature(mut self) -> Self {
        self.signature = None;
        self
    }

    /// Select the stepping engine (see [`MachineConfig::step_threads`]).
    /// Values below 1 are clamped to the serial engine.
    pub fn with_step_threads(mut self, threads: usize) -> Self {
        self.step_threads = threads.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_config_consistent() {
        let c = MachineConfig::scaled_core2duo(1);
        assert_eq!(c.cores, 2);
        let sig = c.signature_config().unwrap();
        assert_eq!(sig.sets, 256);
        assert_eq!(sig.ways, 16);
        assert_eq!(sig.entries(), 4096);
    }

    #[test]
    fn without_signature_strips_unit() {
        let c = MachineConfig::scaled_core2duo(1).without_signature();
        assert!(c.signature_config().is_none());
    }

    #[test]
    fn vm_quantum_shorter() {
        let c = MachineConfig::scaled_vm(1);
        assert!(c.effective_quantum() < c.quantum);
    }

    #[test]
    fn p4_has_private_topology() {
        let c = MachineConfig::scaled_p4_smp(1);
        assert_eq!(c.topology, Topology::private_l2(2));
        assert!(c.l2.size_bytes < CacheGeometry::scaled_l2().size_bytes);
    }

    #[test]
    fn multidomain_preset_consistent() {
        let c = MachineConfig::scaled_multidomain(1, 4);
        assert_eq!(c.cores, 8);
        assert_eq!(c.topology.domains(), 4);
        assert!(c.validate().is_ok());
        // Per-domain signature banks are sized to the domain, not the machine.
        assert_eq!(c.signature_config_for(2).unwrap().cores, 2);
        // The 1-domain case degenerates to the classic scaled machine.
        assert_eq!(
            MachineConfig::scaled_multidomain(7, 1),
            MachineConfig::scaled_core2duo(7)
        );
    }

    #[test]
    fn validate_rejects_inconsistent_machines() {
        let mut c = MachineConfig::scaled_core2duo(1);
        assert!(c.validate().is_ok());
        c.cores = 0;
        assert!(c.validate().unwrap_err().contains("at least one core"));
        let mut c = MachineConfig::scaled_core2duo(1);
        c.topology = Topology::uniform(2, 2); // 4 cores vs cores: 2
        let err = c.validate().unwrap_err();
        assert!(err.contains("sum to 4"), "{err}");
    }

    #[test]
    fn full_scale_is_16x() {
        let f = MachineConfig::full_core2duo(1);
        let s = MachineConfig::scaled_core2duo(1);
        assert_eq!(f.l2.size_bytes, s.l2.size_bytes * 16);
    }
}
