//! Per-core run queues with a fixed quantum — the slice of the OS the
//! paper's mechanism interacts with.
//!
//! The user-level allocator only ever sets *affinity* (which queue a thread
//! waits in); time-sharing within a core stays round-robin, so threads
//! herded onto one core never run concurrently but also never starve
//! (Section 3.2).

use std::collections::VecDeque;

/// Round-robin scheduler state.
#[derive(Debug, Clone)]
pub struct Scheduler {
    queues: Vec<VecDeque<usize>>,
    running: Vec<Option<usize>>,
    quantum_left: Vec<i64>,
}

impl Scheduler {
    /// Empty scheduler for `cores` cores.
    pub fn new(cores: usize) -> Self {
        Scheduler {
            queues: vec![VecDeque::new(); cores],
            running: vec![None; cores],
            quantum_left: vec![0; cores],
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.queues.len()
    }

    /// Append `tid` to `core`'s queue.
    pub fn enqueue(&mut self, core: usize, tid: usize) {
        self.queues[core].push_back(tid);
    }

    /// The thread currently on `core`.
    #[inline]
    pub fn current(&self, core: usize) -> Option<usize> {
        self.running[core]
    }

    /// Whether `core` has anything to run (running or queued).
    #[inline]
    pub fn has_work(&self, core: usize) -> bool {
        self.running[core].is_some() || !self.queues[core].is_empty()
    }

    /// Threads on `core` including the running one (running first).
    pub fn threads_on(&self, core: usize) -> Vec<usize> {
        self.running[core]
            .into_iter()
            .chain(self.queues[core].iter().copied())
            .collect()
    }

    /// Pop the next queued thread onto the core and arm its quantum.
    /// Returns the dispatched tid, or `None` if the queue is empty.
    pub fn dispatch(&mut self, core: usize, quantum: u64) -> Option<usize> {
        debug_assert!(self.running[core].is_none());
        let tid = self.queues[core].pop_front()?;
        self.running[core] = Some(tid);
        self.quantum_left[core] = quantum as i64;
        Some(tid)
    }

    /// Re-arm the running quantum (used for solo threads and for
    /// background threads with reduced quantum shares).
    pub fn rearm(&mut self, core: usize, quantum: u64) {
        self.quantum_left[core] = quantum as i64;
    }

    /// Charge `cycles` against the running quantum; true when it expired.
    pub fn charge(&mut self, core: usize, cycles: u64) -> bool {
        self.quantum_left[core] -= cycles as i64;
        self.quantum_left[core] <= 0
    }

    /// Mutable handle on `core`'s remaining quantum, so the batched hot
    /// loop can charge it without re-indexing per op (equivalent to
    /// repeated [`Scheduler::charge`] calls).
    #[inline]
    pub fn quantum_cell(&mut self, core: usize) -> &mut i64 {
        &mut self.quantum_left[core]
    }

    /// Deschedule the running thread back to its queue tail; returns it.
    pub fn preempt(&mut self, core: usize) -> Option<usize> {
        let tid = self.running[core].take()?;
        self.queues[core].push_back(tid);
        Some(tid)
    }

    /// Remove `tid` from wherever it lives (for an affinity move).
    /// Returns the core it was on and whether it was actively running.
    pub fn remove(&mut self, tid: usize) -> Option<(usize, bool)> {
        for core in 0..self.queues.len() {
            if self.running[core] == Some(tid) {
                self.running[core] = None;
                return Some((core, true));
            }
            if let Some(pos) = self.queues[core].iter().position(|&t| t == tid) {
                self.queues[core].remove(pos);
                return Some((core, false));
            }
        }
        None
    }

    /// The core `tid` is currently assigned to, if any.
    pub fn core_of(&self, tid: usize) -> Option<usize> {
        (0..self.queues.len())
            .find(|&c| self.running[c] == Some(tid) || self.queues[c].contains(&tid))
    }

    /// Number of threads assigned to `core` (running + queued).
    pub fn load(&self, core: usize) -> usize {
        usize::from(self.running[core].is_some()) + self.queues[core].len()
    }

    /// Split the scheduler into per-domain lanes over `ranges`, which must
    /// be contiguous, ascending and cover every core exactly once (cache
    /// domains always are). Each lane owns the run-queue state of its
    /// cores and keeps addressing them by *global* core index, so lane
    /// code reads identically to whole-machine code.
    pub fn split_lanes(&mut self, ranges: &[std::ops::Range<usize>]) -> Vec<SchedLane<'_>> {
        let mut lanes = Vec::with_capacity(ranges.len());
        let (mut queues, mut running, mut quantum_left) = (
            self.queues.as_mut_slice(),
            self.running.as_mut_slice(),
            self.quantum_left.as_mut_slice(),
        );
        let mut taken = 0usize;
        for range in ranges {
            debug_assert_eq!(range.start, taken, "domain ranges must be contiguous");
            let len = range.end - range.start;
            let (q, q_rest) = queues.split_at_mut(len);
            let (r, r_rest) = running.split_at_mut(len);
            let (ql, ql_rest) = quantum_left.split_at_mut(len);
            lanes.push(SchedLane {
                core_start: range.start,
                queues: q,
                running: r,
                quantum_left: ql,
            });
            queues = q_rest;
            running = r_rest;
            quantum_left = ql_rest;
            taken = range.end;
        }
        debug_assert!(queues.is_empty(), "domain ranges must cover every core");
        lanes
    }
}

/// One cache domain's slice of the scheduler (see
/// [`Scheduler::split_lanes`]). All core arguments are global indices.
#[derive(Debug)]
pub struct SchedLane<'a> {
    core_start: usize,
    queues: &'a mut [VecDeque<usize>],
    running: &'a mut [Option<usize>],
    quantum_left: &'a mut [i64],
}

impl SchedLane<'_> {
    #[inline]
    fn local(&self, core: usize) -> usize {
        core - self.core_start
    }

    /// The thread currently on `core`.
    #[inline]
    pub fn current(&self, core: usize) -> Option<usize> {
        self.running[self.local(core)]
    }

    /// Whether `core` has anything to run (running or queued).
    #[inline]
    pub fn has_work(&self, core: usize) -> bool {
        let c = self.local(core);
        self.running[c].is_some() || !self.queues[c].is_empty()
    }

    /// Pop the next queued thread onto the core and arm its quantum.
    pub fn dispatch(&mut self, core: usize, quantum: u64) -> Option<usize> {
        let c = self.local(core);
        debug_assert!(self.running[c].is_none());
        let tid = self.queues[c].pop_front()?;
        self.running[c] = Some(tid);
        self.quantum_left[c] = quantum as i64;
        Some(tid)
    }

    /// Re-arm the running quantum.
    #[inline]
    pub fn rearm(&mut self, core: usize, quantum: u64) {
        self.quantum_left[self.local(core)] = quantum as i64;
    }

    /// Charge `cycles` against the running quantum; true when it expired.
    #[inline]
    pub fn charge(&mut self, core: usize, cycles: u64) -> bool {
        let c = self.local(core);
        self.quantum_left[c] -= cycles as i64;
        self.quantum_left[c] <= 0
    }

    /// Mutable handle on `core`'s remaining quantum (see
    /// [`Scheduler::quantum_cell`]).
    #[inline]
    pub fn quantum_cell(&mut self, core: usize) -> &mut i64 {
        let c = self.local(core);
        &mut self.quantum_left[c]
    }

    /// Deschedule the running thread back to its queue tail; returns it.
    pub fn preempt(&mut self, core: usize) -> Option<usize> {
        let c = self.local(core);
        let tid = self.running[c].take()?;
        self.queues[c].push_back(tid);
        Some(tid)
    }

    /// Number of threads assigned to `core` (running + queued).
    #[inline]
    pub fn load(&self, core: usize) -> usize {
        let c = self.local(core);
        usize::from(self.running[c].is_some()) + self.queues[c].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_pops_fifo() {
        let mut s = Scheduler::new(1);
        s.enqueue(0, 5);
        s.enqueue(0, 7);
        assert_eq!(s.dispatch(0, 100), Some(5));
        assert_eq!(s.current(0), Some(5));
        assert_eq!(s.load(0), 2);
    }

    #[test]
    fn quantum_expires_after_charges() {
        let mut s = Scheduler::new(1);
        s.enqueue(0, 1);
        s.dispatch(0, 100);
        assert!(!s.charge(0, 60));
        assert!(s.charge(0, 60), "overshoot ends the quantum");
    }

    #[test]
    fn preempt_round_robins() {
        let mut s = Scheduler::new(1);
        s.enqueue(0, 1);
        s.enqueue(0, 2);
        s.dispatch(0, 10);
        assert_eq!(s.preempt(0), Some(1));
        assert_eq!(s.dispatch(0, 10), Some(2));
        s.preempt(0);
        assert_eq!(s.dispatch(0, 10), Some(1), "rotation returns to 1");
    }

    #[test]
    fn remove_running_thread() {
        let mut s = Scheduler::new(2);
        s.enqueue(0, 3);
        s.dispatch(0, 10);
        assert_eq!(s.remove(3), Some((0, true)));
        assert_eq!(s.current(0), None);
        assert!(!s.has_work(0));
    }

    #[test]
    fn remove_queued_thread() {
        let mut s = Scheduler::new(2);
        s.enqueue(1, 3);
        s.enqueue(1, 4);
        assert_eq!(s.remove(4), Some((1, false)));
        assert_eq!(s.threads_on(1), vec![3]);
        assert_eq!(s.remove(99), None);
    }

    #[test]
    fn core_of_finds_thread() {
        let mut s = Scheduler::new(2);
        s.enqueue(1, 8);
        assert_eq!(s.core_of(8), Some(1));
        s.dispatch(1, 10);
        assert_eq!(s.core_of(8), Some(1));
        assert_eq!(s.core_of(9), None);
    }

    #[test]
    fn split_lanes_partition_by_global_index() {
        let mut s = Scheduler::new(4);
        s.enqueue(0, 10);
        s.enqueue(2, 20);
        s.enqueue(3, 30);
        {
            let mut lanes = s.split_lanes(&[0..2, 2..4]);
            assert_eq!(lanes.len(), 2);
            assert_eq!(lanes[0].dispatch(0, 100), Some(10));
            assert_eq!(lanes[1].dispatch(2, 100), Some(20));
            assert!(lanes[1].has_work(3));
            assert_eq!(lanes[1].load(3), 1);
            assert!(lanes[1].charge(2, 200), "quantum expires in lane");
            assert_eq!(lanes[1].preempt(2), Some(20));
        }
        // Mutations through lanes land in the shared scheduler state.
        assert_eq!(s.current(0), Some(10));
        assert_eq!(s.core_of(20), Some(2));
        assert_eq!(s.core_of(30), Some(3));
    }

    #[test]
    fn threads_on_lists_running_first() {
        let mut s = Scheduler::new(1);
        s.enqueue(0, 1);
        s.enqueue(0, 2);
        s.dispatch(0, 10);
        assert_eq!(s.threads_on(0), vec![1, 2]);
    }
}
