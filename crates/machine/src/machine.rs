//! The multi-core machine engine.

use crate::config::{MachineConfig, VirtConfig};
use crate::mapping::Mapping;
use crate::sched::{SchedLane, Scheduler};
use crate::thread::{ProcView, Thread, ThreadView};
use crate::timing::TimingModel;
use serde::{Deserialize, Serialize};
use symbio_cache::{AccessLevel, Address, CoreChannel, DomainMem, Dram, MemorySystem};
use symbio_cbf::{CacheEventSink, NullSink, SignatureSample, SignatureUnit};
use symbio_workloads::{Op, Pattern, ThreadSpec, WorkloadGen, WorkloadSpec};

/// Shift applied to `pid + 1` to namespace each process's address space.
const ASID_SHIFT: u32 = 44;
/// Page size for the translation model (4 KiB).
const PAGE_SHIFT: u32 = 12;
/// Physical page-frame number mask (40-bit physical space).
const PFN_MASK: u64 = (1 << 28) - 1;

/// Advance `state` (xorshift64) and draw a quantum uniform in
/// [base/2, 3·base/2] — see [`Machine::jittered_quantum`] for why the
/// jitter exists. A free function over the bare state so both the serial
/// engine (`jitter[0]`) and each decomposed domain lane (its own stream)
/// share one implementation.
#[inline]
fn jittered(state: &mut u64, base: u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    let span = base; // +/- 50%
    if span == 0 {
        return base.max(1);
    }
    base - span / 2 + *state % span
}

/// Context-switch cost for a configuration (timing model plus the VM
/// entry/exit surcharge when virtualized).
#[inline]
fn switch_cost_of(cfg: &MachineConfig) -> u64 {
    cfg.timing.context_switch + cfg.virt.map_or(0, |v| v.vm_switch_extra)
}

/// Deterministic vpage→pfn scatter (SplitMix64 finalizer). Stands in for
/// the OS page allocator: virtually-contiguous pages land on effectively
/// random frames, so cache-set usage is uniform per process.
#[inline]
fn translate_page(vpage: u64) -> u64 {
    let mut z = vpage.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)) & PFN_MASK
}

/// How a thread's generator is rebuilt when its run completes and the
/// benchmark is restarted (the paper restarts co-runners until the longest
/// benchmark finishes).
#[derive(Debug, Clone)]
enum GenFactory {
    Single(WorkloadSpec),
    Multi(ThreadSpec, usize),
}

impl GenFactory {
    fn make(&self, seed: u64) -> WorkloadGen {
        match self {
            GenFactory::Single(spec) => spec.instantiate(seed),
            GenFactory::Multi(spec, inner) => spec.instantiate(seed, *inner),
        }
    }
}

/// Result of one process in a measurement run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcOutcome {
    /// Process id.
    pub pid: usize,
    /// Workload name.
    pub name: String,
    /// User time: summed cycles its threads executed up to each thread's
    /// first completion (the `time(1)` "user" figure the paper tabulates).
    pub user_cycles: u64,
    /// Wall clock (core time) at which the process finished its first run.
    pub wall_cycles: u64,
}

/// Result of [`Machine::run_to_completion`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Whether every gating process completed at least one run.
    pub completed: bool,
    /// Frontier clock when the run stopped.
    pub wall_cycles: u64,
    /// Per-process outcomes (gating processes only), pid order.
    pub procs: Vec<ProcOutcome>,
    /// Total L2 accesses across every thread of the run (observability:
    /// feeds the sweep engine's throughput counters).
    pub l2_accesses: u64,
    /// Total L2 misses across every thread of the run.
    pub l2_misses: u64,
}

impl RunOutcome {
    /// User time of a process by name.
    pub fn user_time(&self, name: &str) -> Option<u64> {
        self.procs
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.user_cycles)
    }
}

/// Why a [`hot_run`] batch stopped.
#[derive(Debug, Clone, Copy)]
enum HotExit {
    /// The quantum expired mid-batch. The caller must run the
    /// context-switch slow path; `gating_first` reports whether the same
    /// op also produced a gating first completion (completion-mode
    /// drivers re-check `all_complete` after the switch, matching the
    /// per-op engine's event order).
    Quantum { gating_first: bool },
    /// A gating thread finished its first run without the quantum
    /// expiring (only returned when `stop_on_gating_first` is set).
    GatingFirst,
    /// The core clock passed the batch limit.
    Limit,
}

/// Execute exactly one operation of thread `t` against its pre-resolved
/// memory channel: cost model, memory system, virtualization tax,
/// retirement and completion-restart. Returns `(cost, gating_first)`.
///
/// This is *the* op semantics — the per-op engine ([`Machine::exec_op`]),
/// the batched serial engine and the decomposed domain lanes all execute
/// through here, so they cannot drift apart. The caller owns quantum
/// accounting (the only piece that differs between them).
#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn exec_one<S: CacheEventSink + ?Sized>(
    t: &mut Thread,
    factory: &GenFactory,
    chan: &mut CoreChannel<'_>,
    sink: &mut S,
    clock: &mut u64,
    virt: Option<VirtConfig>,
    timing: TimingModel,
    paging: bool,
) -> (u64, bool) {
    let op = t.gen.next_op();
    let instrs = op.instructions();
    let mut cost = match op {
        Op::Compute(n) => u64::from(n),
        Op::Load(a) | Op::Store(a) => {
            let va = a | ((t.pid as u64 + 1) << ASID_SHIFT);
            let addr = if paging {
                // One-entry memo: translation is a pure hash of the vpage,
                // so reusing the thread's last pair is output-invariant.
                let vpage = va >> PAGE_SHIFT;
                let pfn = if t.tlb_vpage == vpage {
                    t.tlb_pfn
                } else {
                    let pfn = translate_page(vpage);
                    t.tlb_vpage = vpage;
                    t.tlb_pfn = pfn;
                    pfn
                };
                Address((pfn << PAGE_SHIFT) | (va & ((1 << PAGE_SHIFT) - 1)))
            } else {
                Address(va)
            };
            let resp = chan.access(addr, op.is_write(), *clock, sink);
            t.mem_ops += 1;
            if resp.level != AccessLevel::L1 {
                t.l2_accesses += 1;
                if resp.level == AccessLevel::Memory {
                    t.l2_misses += 1;
                }
            }
            timing.mem_cost(resp.level, resp.dram_cycles)
        }
    };
    if let Some(v) = virt {
        let acc = t.tax_accum + v.tax_num * instrs;
        cost += acc / v.tax_den;
        t.tax_accum = acc % v.tax_den;
    }
    t.user_cycles += cost;
    t.retired += instrs;
    *clock += cost;
    let mut gating_first = false;
    if t.run_complete() {
        t.completions += 1;
        if t.first_completion_user.is_none() {
            t.first_completion_user = Some(t.user_cycles);
            t.first_completion_wall = Some(*clock);
            gating_first = t.counts_for_completion;
        }
        t.retired = 0;
        let seed = t
            .base_seed
            .wrapping_add(u64::from(t.completions).wrapping_mul(0xBF58476D1CE4E5B9));
        t.gen = factory.make(seed);
    }
    (cost, gating_first)
}

/// The batched hot loop: run ops of one thread back to back while the
/// batch invariants hold, charging the quantum inline instead of through
/// the scheduler each op. Exits are chosen so the op sequence is
/// cycle-identical to driving [`exec_one`] one op at a time through the
/// per-op engine.
#[allow(clippy::too_many_arguments)]
#[inline]
fn hot_run<S: CacheEventSink + ?Sized>(
    t: &mut Thread,
    factory: &GenFactory,
    chan: &mut CoreChannel<'_>,
    sink: &mut S,
    clock: &mut u64,
    quantum_left: &mut i64,
    virt: Option<VirtConfig>,
    timing: TimingModel,
    paging: bool,
    limit: u64,
    stop_on_gating_first: bool,
) -> HotExit {
    loop {
        let (cost, gating_first) = exec_one(t, factory, chan, sink, clock, virt, timing, paging);
        *quantum_left -= cost as i64;
        if *quantum_left <= 0 {
            return HotExit::Quantum { gating_first };
        }
        if gating_first && stop_on_gating_first {
            return HotExit::GatingFirst;
        }
        if *clock > limit {
            return HotExit::Limit;
        }
    }
}

/// The simulated machine (see the crate docs for the architecture).
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    mem: MemorySystem,
    /// One signature unit per cache domain (empty when the signature is
    /// disabled). Each bank is sized to its own domain's core count and
    /// sees domain-local core ids.
    sig: Vec<SignatureUnit>,
    /// Global core id → owning cache domain.
    domain_of: Vec<usize>,
    /// Domain → first global core id.
    domain_start: Vec<usize>,
    sched: Scheduler,
    threads: Vec<Thread>,
    factories: Vec<GenFactory>,
    quantum_divisor: Vec<u64>,
    proc_names: Vec<String>,
    proc_threads: Vec<Vec<usize>>,
    gating_procs: usize,
    clocks: Vec<u64>,
    switches: u64,
    /// One quantum-jitter stream per cache domain. The serial engine only
    /// ever draws from `jitter[0]`, which is seeded with the historical
    /// formula so legacy digests are unchanged; the decomposed engine
    /// gives each domain lane its own stream so lanes stay independent.
    jitter: Vec<u64>,
    /// Reused signature-sample buffer: context switches are the most
    /// frequent non-op event, and with this (plus the unit's RBV scratch)
    /// they stay off the allocator entirely.
    sample_scratch: SignatureSample,
    /// Per-domain sample scratch for the decomposed engine (lanes cannot
    /// share `sample_scratch`); allocated once so parallel stepping stays
    /// off the allocator per quantum.
    lane_scratch: Vec<SignatureSample>,
    /// Per-domain step batches executed by the decomposed engine
    /// (0 under the serial engine).
    par_domain_steps: u64,
    sealed: bool,
}

impl Machine {
    /// Build an empty machine from a configuration.
    ///
    /// Panics on a structurally invalid configuration; use
    /// [`MachineConfig::validate`] (or the experiment-config builder) to
    /// get a typed error instead.
    pub fn new(cfg: MachineConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid machine configuration: {e}");
        }
        let mut mem = MemorySystem::new(
            cfg.topology,
            cfg.l1,
            cfg.l2,
            cfg.policy,
            Dram::new(cfg.dram.0, cfg.dram.1),
            cfg.seed,
        );
        // The decomposed engine steps each cache domain on its own DRAM
        // channel so lanes share no memory-system state at all.
        if cfg.step_threads >= 2 {
            mem.split_dram_channels();
        }
        let sig = if cfg.signature.is_some() {
            (0..cfg.topology.domains())
                .map(|d| {
                    let bank = cfg
                        .signature_config_for(cfg.topology.domain(d).cores)
                        .expect("signature enabled");
                    SignatureUnit::new(bank)
                })
                .collect()
        } else {
            Vec::new()
        };
        let domain_of = (0..cfg.cores).map(|c| cfg.topology.domain_of(c)).collect();
        let domain_start = (0..cfg.topology.domains())
            .map(|d| cfg.topology.core_start(d))
            .collect();
        let domains = cfg.topology.domains();
        // Domain 0 keeps the historical seeding so the serial engine's
        // jitter stream (and therefore every legacy golden digest) is
        // unchanged; further domains mix the domain id in.
        let jitter = (0..domains)
            .map(|d| {
                cfg.seed
                    .wrapping_add((d as u64).wrapping_mul(0xA0761D6478BD642F))
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    | 1
            })
            .collect();
        Machine {
            mem,
            sig,
            domain_of,
            domain_start,
            sched: Scheduler::new(cfg.cores),
            threads: Vec::new(),
            factories: Vec::new(),
            quantum_divisor: Vec::new(),
            proc_names: Vec::new(),
            proc_threads: Vec::new(),
            gating_procs: 0,
            clocks: vec![0; cfg.cores],
            switches: 0,
            jitter,
            sample_scratch: SignatureSample::default(),
            lane_scratch: (0..domains).map(|_| SignatureSample::default()).collect(),
            par_domain_steps: 0,
            cfg,
            sealed: false,
        }
    }

    /// Scheduling quantum with ±50 % deterministic jitter.
    ///
    /// Real machines' per-core schedulers drift relative to each other
    /// (timer skew, interrupts, syscalls); without jitter the simulated
    /// cores rotate their run queues in perfect lockstep and the identity
    /// of the *concurrently running* co-runner is frozen by initial queue
    /// phase — which makes two of the three 4-on-2 mappings behaviourally
    /// identical and defeats the contention analysis. Jitter restores the
    /// drift so a time-shared pair faces every other-core process in turn.
    /// The jitter is wide (uniform in [q/2, 3q/2]) because simulated runs
    /// span only a handful of quanta, where a real benchmark spans ~10^3 —
    /// phase mixing must happen correspondingly faster.
    fn jittered_quantum(&mut self, base: u64) -> u64 {
        jittered(&mut self.jitter[0], base)
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    fn add_thread_raw(
        &mut self,
        pid: usize,
        factory: GenFactory,
        gating: bool,
        quantum_divisor: u64,
    ) -> usize {
        let tid = self.threads.len();
        let base_seed = self
            .cfg
            .seed
            .wrapping_add((tid as u64 + 1).wrapping_mul(0xD1B54A32D192ED03));
        let gen = factory.make(base_seed);
        self.threads
            .push(Thread::new(tid, pid, gen, base_seed, gating));
        self.factories.push(factory);
        self.quantum_divisor.push(quantum_divisor);
        self.proc_threads[pid].push(tid);
        tid
    }

    /// Add a single-threaded process; returns its pid. Must be called
    /// before [`Machine::start`].
    pub fn add_process(&mut self, spec: &WorkloadSpec) -> usize {
        assert!(!self.sealed, "cannot add processes after start()");
        let pid = self.proc_names.len();
        self.proc_names.push(spec.name.clone());
        self.proc_threads.push(Vec::new());
        self.add_thread_raw(pid, GenFactory::Single(spec.clone()), true, 1);
        self.gating_procs += 1;
        pid
    }

    /// Add a multi-threaded process with `n` threads; returns its pid.
    pub fn add_multithreaded(&mut self, spec: &ThreadSpec, n: usize) -> usize {
        assert!(!self.sealed, "cannot add processes after start()");
        assert!(n >= 1);
        let pid = self.proc_names.len();
        self.proc_names.push(spec.name.clone());
        self.proc_threads.push(Vec::new());
        for inner in 0..n {
            self.add_thread_raw(pid, GenFactory::Multi(spec.clone(), inner), true, 1);
        }
        self.gating_procs += 1;
        pid
    }

    /// Add a non-gating background service (Dom0-style): it runs forever
    /// with a reduced quantum share and does not block completion.
    pub fn add_background(&mut self, spec: &WorkloadSpec, quantum_divisor: u64) -> usize {
        assert!(!self.sealed, "cannot add processes after start()");
        let pid = self.proc_names.len();
        self.proc_names.push(spec.name.clone());
        self.proc_threads.push(Vec::new());
        self.add_thread_raw(
            pid,
            GenFactory::Single(spec.clone()),
            false,
            quantum_divisor.max(1),
        );
        pid
    }

    /// The Dom0 control-domain service workload for the configured L2.
    pub fn dom0_spec(&self) -> WorkloadSpec {
        let l2 = self.cfg.l2.size_bytes;
        WorkloadSpec {
            name: "dom0".into(),
            pattern: Pattern::HotCold {
                hot: l2 / 16,
                cold: l2 / 2,
                hot_prob: 0.7,
            },
            compute_gap: (5, 15),
            write_ratio: 0.3,
            work: u64::MAX / 2,
        }
    }

    /// Seal the process table, place threads on cores (round-robin for
    /// managed threads unless `initial` is given; Dom0 — added here when
    /// the virtualization model asks for it — goes to core 0).
    pub fn start(&mut self, initial: Option<&Mapping>) {
        assert!(!self.sealed, "start() called twice");
        let managed = self.threads.len();
        if self.cfg.virt.is_some_and(|v| v.dom0) {
            let spec = self.dom0_spec();
            self.add_background(&spec, 8);
        }
        self.sealed = true;
        let default = Mapping::round_robin(managed, self.cfg.cores);
        let mapping = initial.unwrap_or(&default);
        assert_eq!(
            mapping.len(),
            managed,
            "initial mapping must cover every managed thread"
        );
        for (tid, core) in mapping.iter() {
            assert!(core < self.cfg.cores);
            self.sched.enqueue(core, tid);
        }
        // Background threads (everything after `managed`) go to core 0.
        for tid in managed..self.threads.len() {
            self.sched.enqueue(0, tid);
        }
    }

    /// Number of managed (gating) threads — the domain of [`Mapping`]s.
    pub fn managed_threads(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| t.counts_for_completion)
            .count()
    }

    /// Move threads according to `mapping` (affinity change). Running
    /// threads being migrated are switched out immediately (their signature
    /// sample is taken, and the context-switch cost is charged).
    pub fn apply_mapping(&mut self, mapping: &Mapping) {
        assert!(self.sealed, "start() the machine before remapping");
        for (tid, target) in mapping.iter() {
            debug_assert!(self.threads[tid].counts_for_completion);
            if self.sched.core_of(tid) == Some(target) {
                continue;
            }
            if let Some((old_core, was_running)) = self.sched.remove(tid) {
                if was_running {
                    self.take_signature_sample(old_core, tid);
                    self.clocks[old_core] += self.switch_cost();
                    self.switches += 1;
                }
            }
            self.sched.enqueue(target, tid);
            // A previously idle core inherits the frontier clock so the
            // migrated thread does not "time travel".
            let frontier = self.active_min_clock().unwrap_or(0);
            if self.clocks[target] < frontier && self.sched.load(target) == 1 {
                self.clocks[target] = frontier;
            }
        }
    }

    /// Current thread→core assignment of managed threads.
    pub fn current_mapping(&self) -> Mapping {
        let managed = self.managed_threads();
        Mapping::new(
            (0..managed)
                .map(|tid| self.sched.core_of(tid).expect("managed thread placed"))
                .collect(),
        )
    }

    fn switch_cost(&self) -> u64 {
        switch_cost_of(&self.cfg)
    }

    fn take_signature_sample(&mut self, core: usize, tid: usize) {
        let d = self.domain_of[core];
        if let Some(sig) = self.sig.get_mut(d) {
            // The domain's bank indexes cores locally; the sampled
            // per-core vectors therefore stay domain-local, but the core
            // *label* on the sample is restored to the global id so
            // `ThreadView::last_core` keeps machine-wide meaning.
            sig.switch_out_into(core - self.domain_start[d], &mut self.sample_scratch);
            self.sample_scratch.core = core;
            self.threads[tid].sig.update(&self.sample_scratch);
        }
    }

    fn active_min_clock(&self) -> Option<u64> {
        (0..self.cfg.cores)
            .filter(|&c| self.sched.has_work(c))
            .map(|c| self.clocks[c])
            .min()
    }

    /// The simulation frontier: the smallest clock among active cores (or
    /// the largest clock overall when everything is idle).
    pub fn now(&self) -> u64 {
        self.active_min_clock()
            .unwrap_or_else(|| self.clocks.iter().copied().max().unwrap_or(0))
    }

    /// Execute one operation on the most-behind active core. Returns false
    /// when no core has work.
    pub fn step_one(&mut self) -> bool {
        debug_assert!(self.sealed, "start() the machine first");
        let Some(core) = self.frontier_core() else {
            return false;
        };
        let tid = self.ensure_current(core);
        self.exec_op(core, tid);
        true
    }

    /// The most-behind active core: first minimum of the active clocks
    /// (lowest index wins ties, matching `min_by_key`).
    #[inline]
    fn frontier_core(&self) -> Option<usize> {
        (0..self.cfg.cores)
            .filter(|&c| self.sched.has_work(c))
            .min_by_key(|&c| self.clocks[c])
    }

    /// The thread running on `core`, dispatching (and arming a jittered
    /// quantum) when the core is between threads.
    #[inline]
    fn ensure_current(&mut self, core: usize) -> usize {
        match self.sched.current(core) {
            Some(t) => t,
            None => {
                let base = self.cfg.effective_quantum();
                let quantum = self.jittered_quantum(base);
                let t = self
                    .sched
                    .dispatch(core, quantum) // provisional; corrected below
                    .expect("has_work implies dispatchable");
                let div = self.quantum_divisor[t];
                if div > 1 {
                    self.sched.rearm(core, quantum / div);
                }
                t
            }
        }
    }

    /// The largest value `clocks[core]` may hold *before* an op such that
    /// the op is one the unbatched engine would also execute next: `core`
    /// must still win the frontier tie-break against every other active
    /// core (whose clocks cannot move during the batch) and stay below
    /// `stop_before`. Requires `clocks[core] < stop_before`.
    #[inline]
    fn batch_limit(&self, core: usize, stop_before: u64) -> u64 {
        let mut limit = stop_before - 1;
        for c in 0..self.cfg.cores {
            if c != core && self.sched.has_work(c) {
                // Lower-index cores win ties, so `core` leads only while
                // strictly behind them (their clock is >= 1 here because
                // `core` is currently the frontier).
                let v = if c < core {
                    self.clocks[c] - 1
                } else {
                    self.clocks[c]
                };
                limit = limit.min(v);
            }
        }
        limit
    }

    /// Execute one operation of `tid` on `core` (cost model, memory
    /// system, virtualization tax, completion and quantum accounting).
    #[inline]
    fn exec_op(&mut self, core: usize, tid: usize) {
        let d = self.domain_of[core];
        let mut chan = self.mem.core_channel(core);
        let t = &mut self.threads[tid];
        let factory = &self.factories[tid];
        let clock = &mut self.clocks[core];
        let (virt, timing, paging) = (self.cfg.virt, self.cfg.timing, self.cfg.paging);
        let (cost, _gating_first) = match self.sig.get_mut(d) {
            Some(unit) => exec_one(t, factory, &mut chan, unit, clock, virt, timing, paging),
            None => exec_one(
                t,
                factory,
                &mut chan,
                &mut NullSink,
                clock,
                virt,
                timing,
                paging,
            ),
        };
        if self.sched.charge(core, cost) {
            self.context_switch(core);
        }
    }

    /// Run the batched hot loop for `tid` on `core`: every per-op borrow
    /// (thread, memory channel, signature sink, clock, quantum) is
    /// resolved once here, then [`hot_run`] executes ops back to back
    /// until the quantum expires, the clock passes `limit`, or — in
    /// completion mode — a gating thread first completes. Quantum expiry
    /// exits to the caller's [`Machine::context_switch`] slow path, which
    /// is exactly where the per-op engine would have landed.
    fn hot_batch(
        &mut self,
        core: usize,
        tid: usize,
        limit: u64,
        stop_on_gating_first: bool,
    ) -> HotExit {
        let d = self.domain_of[core];
        let mut chan = self.mem.core_channel(core);
        let t = &mut self.threads[tid];
        let factory = &self.factories[tid];
        let clock = &mut self.clocks[core];
        let quantum_left = self.sched.quantum_cell(core);
        let (virt, timing, paging) = (self.cfg.virt, self.cfg.timing, self.cfg.paging);
        match self.sig.get_mut(d) {
            Some(unit) => hot_run(
                t,
                factory,
                &mut chan,
                unit,
                clock,
                quantum_left,
                virt,
                timing,
                paging,
                limit,
                stop_on_gating_first,
            ),
            None => hot_run(
                t,
                factory,
                &mut chan,
                &mut NullSink,
                clock,
                quantum_left,
                virt,
                timing,
                paging,
                limit,
                stop_on_gating_first,
            ),
        }
    }

    /// Quantum expiry; true when the running thread was actually preempted
    /// (a solo thread just re-arms and keeps running).
    fn context_switch(&mut self, core: usize) -> bool {
        let Some(cur) = self.sched.current(core) else {
            return false;
        };
        self.take_signature_sample(core, cur);
        if self.sched.load(core) > 1 {
            self.sched.preempt(core);
            self.clocks[core] += self.switch_cost();
            self.switches += 1;
            true
        } else {
            // Solo thread: no one to switch to; just re-arm the quantum
            // (the snapshot above still refreshes the signature sample).
            let base = self.cfg.effective_quantum() / self.quantum_divisor[cur];
            let quantum = self.jittered_quantum(base.max(1));
            self.sched.rearm(core, quantum.max(1));
            false
        }
    }

    /// Run until the frontier advances by `cycles` (or work runs out).
    ///
    /// Batched: the frontier scan and scheduler lookup are hoisted out of
    /// the op loop — while the dispatched thread stays the frontier (other
    /// active clocks cannot move meanwhile) it runs in a tight inner loop,
    /// breaking only on preemption or on catching up to [`Self::batch_limit`].
    /// The op sequence is cycle-identical to stepping one op at a time.
    ///
    /// With `step_threads >= 2` the decomposed engine steps each cache
    /// domain independently (in parallel) to the same global target; see
    /// [`MachineConfig::step_threads`].
    pub fn run_for(&mut self, cycles: u64) {
        debug_assert!(self.sealed, "start() the machine first");
        let target = self.now().saturating_add(cycles);
        if self.cfg.step_threads >= 2 {
            self.run_decomposed(LaneGoal::For { target });
            return;
        }
        while let Some(core) = self.frontier_core() {
            if self.clocks[core] >= target {
                break;
            }
            let limit = self.batch_limit(core, target);
            let tid = self.ensure_current(core);
            if let HotExit::Quantum { .. } = self.hot_batch(core, tid, limit, false) {
                // Quantum expiry is the slow path: take the signature
                // sample and preempt (or re-arm a solo thread), exactly
                // as the per-op engine does inline.
                self.context_switch(core);
            }
        }
    }

    /// Whether every gating process has completed at least one run.
    pub fn all_complete(&self) -> bool {
        self.threads
            .iter()
            .filter(|t| t.counts_for_completion)
            .all(|t| t.completions >= 1)
    }

    /// Run until every gating process completes once, or `max_cycles` of
    /// frontier progress elapse.
    ///
    /// Batched like [`Machine::run_for`]; additionally breaks the inner
    /// loop at gating first-completion events so `all_complete` is
    /// re-checked at the same op boundaries as unbatched stepping
    /// (completions are the only events that can flip it).
    pub fn run_to_completion(&mut self, max_cycles: u64) -> RunOutcome {
        if !self.sealed {
            self.start(None);
        }
        let deadline = self.now().saturating_add(max_cycles);
        if self.cfg.step_threads >= 2 {
            self.run_decomposed(LaneGoal::Completion { deadline });
            return self.outcome();
        }
        'outer: while !self.all_complete() {
            let Some(core) = self.frontier_core() else {
                break;
            };
            if self.clocks[core] >= deadline {
                break;
            }
            let limit = self.batch_limit(core, deadline);
            let tid = self.ensure_current(core);
            match self.hot_batch(core, tid, limit, true) {
                HotExit::Quantum { gating_first } => {
                    self.context_switch(core);
                    if gating_first {
                        continue 'outer;
                    }
                }
                HotExit::GatingFirst => continue 'outer,
                HotExit::Limit => {}
            }
        }
        self.outcome()
    }

    /// Step every cache domain independently to `goal` — the decomposed
    /// engine (`step_threads >= 2`).
    ///
    /// Each domain becomes a [`Lane`] owning disjoint slices of the
    /// machine (its cores' caches and DRAM channel, scheduler queues,
    /// clocks, signature bank, jitter stream and threads), stepped by the
    /// same hot loop as the serial engine but with domain-local frontier
    /// and batch limits. Lanes share nothing, so the result depends only
    /// on the domain decomposition: any worker count `>= 2` (and any
    /// lane→worker assignment) produces bit-identical machines. Threads
    /// are partitioned by their current core and restored afterwards —
    /// affinity changes only ever happen between runs.
    ///
    /// In completion mode each lane stops when *its own* gating threads
    /// have completed once (a lane hosting only background threads does
    /// not run at all — there is no global frontier to pace it against).
    fn run_decomposed(&mut self, goal: LaneGoal) {
        let domains = self.cfg.topology.domains();
        let n = self.threads.len();
        let lane_of: Vec<usize> = (0..n)
            .map(|tid| {
                let core = self
                    .sched
                    .core_of(tid)
                    .expect("sealed machine places every thread");
                self.domain_of[core]
            })
            .collect();
        let mut lane_threads: Vec<Vec<(usize, Thread)>> =
            (0..domains).map(|_| Vec::new()).collect();
        let mut idx_of = vec![usize::MAX; n];
        for (tid, t) in self.threads.drain(..).enumerate() {
            idx_of[tid] = lane_threads[lane_of[tid]].len();
            lane_threads[lane_of[tid]].push((tid, t));
        }
        let ranges: Vec<std::ops::Range<usize>> = (0..domains)
            .map(|d| self.cfg.topology.core_range(d))
            .collect();
        let mut clock_slices: Vec<&mut [u64]> = Vec::with_capacity(domains);
        let mut rest = self.clocks.as_mut_slice();
        for r in &ranges {
            let (head, tail) = rest.split_at_mut(r.end - r.start);
            clock_slices.push(head);
            rest = tail;
        }
        let sigs: Vec<Option<&mut SignatureUnit>> = if self.sig.is_empty() {
            (0..domains).map(|_| None).collect()
        } else {
            self.sig.iter_mut().map(Some).collect()
        };
        let mut lanes: Vec<Lane<'_>> = Vec::with_capacity(domains);
        for (d, ((((((mem, sched), clocks), sig), jitter), scratch), threads)) in self
            .mem
            .domain_mems()
            .into_iter()
            .zip(self.sched.split_lanes(&ranges))
            .zip(clock_slices)
            .zip(sigs)
            .zip(self.jitter.iter_mut())
            .zip(self.lane_scratch.iter_mut())
            .zip(lane_threads)
            .enumerate()
        {
            lanes.push(Lane {
                domain: d,
                cores: ranges[d].clone(),
                mem,
                sched,
                clocks,
                sig,
                jitter,
                scratch,
                threads,
                switches: 0,
                steps: 0,
            });
        }
        let ctx = LaneCtx {
            cfg: &self.cfg,
            factories: &self.factories,
            divisors: &self.quantum_divisor,
            idx_of: &idx_of,
        };
        // Never spawn more workers than the host has CPUs: oversubscribing
        // only adds OS switch thrash (output is worker-count-invariant, so
        // clamping is free). The floor of 2 keeps the scoped-thread path
        // real — the decomposed engine was explicitly requested — instead
        // of silently degenerating to serial on single-CPU hosts.
        let host = std::thread::available_parallelism().map_or(1, |n| n.get());
        let workers = self.cfg.step_threads.min(domains).min(host.max(2));
        if workers <= 1 {
            for lane in &mut lanes {
                run_lane(lane, goal, ctx);
            }
        } else {
            // Static lane→worker partition (lane d → worker d % W). The
            // partition affects wall-clock only, never output, because
            // lanes share no state.
            let mut buckets: Vec<Vec<Lane<'_>>> = (0..workers).map(|_| Vec::new()).collect();
            for lane in lanes.drain(..) {
                buckets[lane.domain % workers].push(lane);
            }
            lanes = std::thread::scope(|s| {
                let handles: Vec<_> = buckets
                    .into_iter()
                    .map(|mut bucket| {
                        s.spawn(move || {
                            for lane in &mut bucket {
                                run_lane(lane, goal, ctx);
                            }
                            bucket
                        })
                    })
                    .collect();
                let mut done = Vec::with_capacity(domains);
                for h in handles {
                    done.extend(h.join().expect("domain-stepping worker panicked"));
                }
                done
            });
            lanes.sort_by_key(|l| l.domain);
        }
        // Deterministic domain-ordered merge: all lane state writes back
        // through disjoint borrows by construction; only the counters and
        // the thread table need reassembling.
        let mut slots: Vec<Option<Thread>> = (0..n).map(|_| None).collect();
        for lane in lanes {
            self.switches += lane.switches;
            self.par_domain_steps += lane.steps;
            for (tid, t) in lane.threads {
                slots[tid] = Some(t);
            }
        }
        self.threads.extend(
            slots
                .into_iter()
                .map(|s| s.expect("every thread returns from its lane")),
        );
    }

    /// Snapshot the per-process outcome so far.
    pub fn outcome(&self) -> RunOutcome {
        let procs = (0..self.proc_names.len())
            .filter(|&pid| {
                self.proc_threads[pid]
                    .iter()
                    .all(|&t| self.threads[t].counts_for_completion)
            })
            .map(|pid| {
                let tids = &self.proc_threads[pid];
                let user: u64 = tids
                    .iter()
                    .map(|&t| {
                        let th = &self.threads[t];
                        th.first_completion_user.unwrap_or(th.user_cycles)
                    })
                    .sum();
                let wall = tids
                    .iter()
                    .map(|&t| self.threads[t].first_completion_wall.unwrap_or(u64::MAX))
                    .max()
                    .unwrap_or(u64::MAX);
                ProcOutcome {
                    pid,
                    name: self.proc_names[pid].clone(),
                    user_cycles: user,
                    wall_cycles: wall,
                }
            })
            .collect();
        RunOutcome {
            completed: self.all_complete(),
            wall_cycles: self.now(),
            procs,
            l2_accesses: self.threads.iter().map(|t| t.l2_accesses).sum(),
            l2_misses: self.threads.iter().map(|t| t.l2_misses).sum(),
        }
    }

    /// The "syscall" interface of Section 3.2: per-process, per-thread
    /// signature contexts and perf counters for the allocation policies.
    pub fn query_views(&self) -> Vec<ProcView> {
        (0..self.proc_names.len())
            .filter(|&pid| {
                self.proc_threads[pid]
                    .iter()
                    .all(|&t| self.threads[t].counts_for_completion)
            })
            .map(|pid| ProcView {
                pid,
                name: self.proc_names[pid].clone(),
                threads: self.proc_threads[pid]
                    .iter()
                    .map(|&t| {
                        let th = &self.threads[t];
                        ThreadView {
                            tid: th.tid,
                            pid,
                            name: self.proc_names[pid].clone(),
                            occupancy: th.sig.occupancy_ewma,
                            symbiosis: th.sig.symbiosis_ewma.clone(),
                            overlap: th.sig.overlap_ewma.clone(),
                            last_occupancy: th.sig.last_occupancy,
                            last_core: th.sig.last_core,
                            samples: th.sig.samples,
                            filter_len: th.sig.filter_len,
                            l2_miss_rate: th.l2_miss_rate(),
                            l2_misses: th.l2_misses,
                            retired: th.retired,
                        }
                    })
                    .collect(),
            })
            .collect()
    }

    /// Direct access to a thread (tests, figure probes).
    pub fn thread(&self, tid: usize) -> &Thread {
        &self.threads[tid]
    }

    /// Total threads including background.
    pub fn threads_len(&self) -> usize {
        self.threads.len()
    }

    /// Process name by pid.
    pub fn proc_name(&self, pid: usize) -> &str {
        &self.proc_names[pid]
    }

    /// Domain 0's signature unit, when attached (the machine-wide unit on
    /// a single-domain machine — the shape figure probes expect).
    pub fn signature(&self) -> Option<&SignatureUnit> {
        self.sig.first()
    }

    /// The signature unit of cache domain `d`, when attached.
    pub fn signature_of(&self, d: usize) -> Option<&SignatureUnit> {
        self.sig.get(d)
    }

    /// The memory system (footprint ground truth, stats).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Context switches performed.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Per-domain step batches executed by the decomposed engine
    /// (0 when only the serial engine has run).
    pub fn par_domain_steps(&self) -> u64 {
        self.par_domain_steps
    }
}

/// What a decomposed run is driving toward.
#[derive(Debug, Clone, Copy)]
enum LaneGoal {
    /// Advance every lane's frontier to the common `target` clock.
    For {
        /// Global clock every lane runs up to.
        target: u64,
    },
    /// Run each lane until its own gating threads complete once, bounded
    /// by `deadline`.
    Completion {
        /// Global clock bound.
        deadline: u64,
    },
}

/// Shared read-only context for domain lanes (configuration and the
/// tid-indexed tables that never change during a run).
#[derive(Clone, Copy)]
struct LaneCtx<'a> {
    cfg: &'a MachineConfig,
    factories: &'a [GenFactory],
    divisors: &'a [u64],
    /// tid → index into the owning lane's `threads` vec.
    idx_of: &'a [usize],
}

/// One cache domain's private slice of the machine, stepped independently
/// by the decomposed engine. Mirrors the serial engine's state exactly,
/// restricted to the domain's cores; see [`Machine::run_decomposed`].
struct Lane<'a> {
    domain: usize,
    /// Global core ids of this domain (contiguous).
    cores: std::ops::Range<usize>,
    mem: DomainMem<'a>,
    sched: SchedLane<'a>,
    /// Lane-local clocks, indexed by `core - cores.start`.
    clocks: &'a mut [u64],
    sig: Option<&'a mut SignatureUnit>,
    jitter: &'a mut u64,
    scratch: &'a mut SignatureSample,
    /// `(tid, thread)` for every thread currently placed on this domain.
    threads: Vec<(usize, Thread)>,
    switches: u64,
    steps: u64,
}

impl Lane<'_> {
    #[inline]
    fn clock(&self, core: usize) -> u64 {
        self.clocks[core - self.cores.start]
    }

    /// Lane-local frontier: the most-behind active core of this domain
    /// (lowest index wins ties, as in [`Machine::frontier_core`]).
    fn frontier_core(&self) -> Option<usize> {
        self.cores
            .clone()
            .filter(|&c| self.sched.has_work(c))
            .min_by_key(|&c| self.clock(c))
    }

    /// Lane-local batch limit (same invariant as [`Machine::batch_limit`],
    /// quantified over this domain's cores only — other domains' clocks
    /// are irrelevant because lanes never interact).
    fn batch_limit(&self, core: usize, stop_before: u64) -> u64 {
        let mut limit = stop_before - 1;
        for c in self.cores.clone() {
            if c != core && self.sched.has_work(c) {
                let v = if c < core {
                    self.clock(c) - 1
                } else {
                    self.clock(c)
                };
                limit = limit.min(v);
            }
        }
        limit
    }

    fn ensure_current(&mut self, core: usize, ctx: LaneCtx<'_>) -> usize {
        match self.sched.current(core) {
            Some(t) => t,
            None => {
                let quantum = jittered(self.jitter, ctx.cfg.effective_quantum());
                let t = self
                    .sched
                    .dispatch(core, quantum)
                    .expect("has_work implies dispatchable");
                let div = ctx.divisors[t];
                if div > 1 {
                    self.sched.rearm(core, quantum / div);
                }
                t
            }
        }
    }

    fn take_sample(&mut self, core: usize, tid: usize, ctx: LaneCtx<'_>) {
        if let Some(sig) = self.sig.as_deref_mut() {
            sig.switch_out_into(core - self.cores.start, self.scratch);
            self.scratch.core = core;
            self.threads[ctx.idx_of[tid]].1.sig.update(self.scratch);
        }
    }

    fn context_switch(&mut self, core: usize, ctx: LaneCtx<'_>) {
        let Some(cur) = self.sched.current(core) else {
            return;
        };
        self.take_sample(core, cur, ctx);
        if self.sched.load(core) > 1 {
            self.sched.preempt(core);
            self.clocks[core - self.cores.start] += switch_cost_of(ctx.cfg);
            self.switches += 1;
        } else {
            let base = ctx.cfg.effective_quantum() / ctx.divisors[cur];
            let quantum = jittered(self.jitter, base.max(1));
            self.sched.rearm(core, quantum.max(1));
        }
    }

    fn hot_batch(
        &mut self,
        core: usize,
        tid: usize,
        limit: u64,
        stop_on_gating_first: bool,
        ctx: LaneCtx<'_>,
    ) -> HotExit {
        let mut chan = self.mem.core_channel(core);
        let t = &mut self.threads[ctx.idx_of[tid]].1;
        let factory = &ctx.factories[tid];
        let clock = &mut self.clocks[core - self.cores.start];
        let quantum_left = self.sched.quantum_cell(core);
        let (virt, timing, paging) = (ctx.cfg.virt, ctx.cfg.timing, ctx.cfg.paging);
        match self.sig.as_deref_mut() {
            Some(unit) => hot_run(
                t,
                factory,
                &mut chan,
                unit,
                clock,
                quantum_left,
                virt,
                timing,
                paging,
                limit,
                stop_on_gating_first,
            ),
            None => hot_run(
                t,
                factory,
                &mut chan,
                &mut NullSink,
                clock,
                quantum_left,
                virt,
                timing,
                paging,
                limit,
                stop_on_gating_first,
            ),
        }
    }

    /// Whether every gating thread placed on this lane has completed once
    /// (vacuously true for lanes with no gating threads).
    fn all_complete(&self) -> bool {
        self.threads
            .iter()
            .all(|(_, t)| !t.counts_for_completion || t.completions >= 1)
    }
}

/// Drive one lane to its goal — the lane-local image of the serial
/// engine's outer loops in [`Machine::run_for`] /
/// [`Machine::run_to_completion`].
fn run_lane(lane: &mut Lane<'_>, goal: LaneGoal, ctx: LaneCtx<'_>) {
    match goal {
        LaneGoal::For { target } => {
            while let Some(core) = lane.frontier_core() {
                if lane.clock(core) >= target {
                    break;
                }
                let limit = lane.batch_limit(core, target);
                let tid = lane.ensure_current(core, ctx);
                lane.steps += 1;
                if let HotExit::Quantum { .. } = lane.hot_batch(core, tid, limit, false, ctx) {
                    lane.context_switch(core, ctx);
                }
            }
        }
        LaneGoal::Completion { deadline } => {
            'outer: while !lane.all_complete() {
                let Some(core) = lane.frontier_core() else {
                    break;
                };
                if lane.clock(core) >= deadline {
                    break;
                }
                let limit = lane.batch_limit(core, deadline);
                let tid = lane.ensure_current(core, ctx);
                lane.steps += 1;
                match lane.hot_batch(core, tid, limit, true, ctx) {
                    HotExit::Quantum { gating_first } => {
                        lane.context_switch(core, ctx);
                        if gating_first {
                            continue 'outer;
                        }
                    }
                    HotExit::GatingFirst => continue 'outer,
                    HotExit::Limit => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbio_workloads::spec2006;

    const L2: u64 = 256 << 10;

    fn tiny_spec(name: &str, work: u64) -> WorkloadSpec {
        WorkloadSpec {
            name: name.into(),
            pattern: Pattern::RandomUniform { region: 16 << 10 },
            compute_gap: (2, 4),
            write_ratio: 0.2,
            work,
        }
    }

    #[test]
    fn single_process_completes() {
        let mut m = Machine::new(MachineConfig::scaled_core2duo(1));
        m.add_process(&tiny_spec("a", 50_000));
        let out = m.run_to_completion(1_000_000_000);
        assert!(out.completed);
        assert_eq!(out.procs.len(), 1);
        assert!(out.procs[0].user_cycles > 50_000);
    }

    #[test]
    fn four_processes_two_cores_all_complete() {
        let mut m = Machine::new(MachineConfig::scaled_core2duo(2));
        for n in ["a", "b", "c", "d"] {
            m.add_process(&tiny_spec(n, 30_000));
        }
        let out = m.run_to_completion(1_000_000_000);
        assert!(out.completed);
        assert_eq!(out.procs.len(), 4);
        for p in &out.procs {
            assert!(p.user_cycles > 0);
        }
    }

    #[test]
    fn signature_samples_flow_to_contexts() {
        let mut m = Machine::new(MachineConfig::scaled_core2duo(3));
        for n in ["a", "b", "c", "d"] {
            m.add_process(&tiny_spec(n, 10_000_000));
        }
        m.start(None);
        m.run_for(12_000_000);
        let views = m.query_views();
        assert_eq!(views.len(), 4);
        for v in &views {
            let t = &v.threads[0];
            assert!(t.samples > 0, "{} has no signature samples", v.name);
            assert_eq!(t.symbiosis.len(), 2);
        }
    }

    #[test]
    fn multidomain_signature_vectors_are_domain_local() {
        let mut m = Machine::new(MachineConfig::scaled_multidomain(3, 2));
        for n in ["a", "b", "c", "d"] {
            m.add_process(&tiny_spec(n, 10_000_000));
        }
        m.start(None);
        m.run_for(12_000_000);
        assert!(m.signature_of(1).is_some());
        assert!(m.signature_of(2).is_none());
        let views = m.query_views();
        let mut saw_domain_1 = false;
        for v in &views {
            let t = &v.threads[0];
            assert!(t.samples > 0, "{} has no signature samples", v.name);
            assert_eq!(t.symbiosis.len(), 2, "vectors sized to the domain");
            let core = t.last_core.expect("sampled");
            assert!(core < 4, "core label stays global");
            saw_domain_1 |= core >= 2;
        }
        assert!(saw_domain_1, "round-robin spreads threads across domains");
    }

    #[test]
    fn no_signature_unit_when_disabled() {
        let mut m = Machine::new(MachineConfig::scaled_core2duo(1).without_signature());
        m.add_process(&tiny_spec("a", 10_000));
        let _ = m.run_to_completion(100_000_000);
        assert!(m.signature().is_none());
    }

    #[test]
    fn mapping_confines_threads_to_cores() {
        let mut m = Machine::new(MachineConfig::scaled_core2duo(4));
        for n in ["a", "b", "c", "d"] {
            m.add_process(&tiny_spec(n, 10_000_000));
        }
        let map = Mapping::new(vec![0, 0, 1, 1]);
        m.start(Some(&map));
        m.run_for(500_000);
        assert_eq!(m.current_mapping(), map);
    }

    #[test]
    fn remapping_moves_threads() {
        let mut m = Machine::new(MachineConfig::scaled_core2duo(5));
        for n in ["a", "b", "c", "d"] {
            m.add_process(&tiny_spec(n, 10_000_000));
        }
        m.start(None);
        m.run_for(300_000);
        let map = Mapping::new(vec![0, 0, 1, 1]);
        m.apply_mapping(&map);
        m.run_for(300_000);
        assert_eq!(m.current_mapping(), map);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = || {
            let mut m = Machine::new(MachineConfig::scaled_core2duo(9));
            m.add_process(&spec2006::gobmk(L2));
            m.add_process(&spec2006::soplex(L2));
            m.run_to_completion(2_000_000_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a.procs[0].user_cycles, b.procs[0].user_cycles);
        assert_eq!(a.procs[1].user_cycles, b.procs[1].user_cycles);
    }

    #[test]
    fn different_seeds_differ() {
        let run = |s| {
            let mut m = Machine::new(MachineConfig::scaled_core2duo(s));
            m.add_process(&tiny_spec("a", 200_000));
            m.run_to_completion(1_000_000_000).procs[0].user_cycles
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn vm_mode_adds_overhead() {
        let native = {
            let mut m = Machine::new(MachineConfig::scaled_core2duo(11));
            m.add_process(&tiny_spec("a", 100_000));
            m.run_to_completion(1_000_000_000).procs[0].user_cycles
        };
        let vm = {
            let mut m = Machine::new(MachineConfig::scaled_vm(11));
            m.add_process(&tiny_spec("a", 100_000));
            m.run_to_completion(1_000_000_000).procs[0].user_cycles
        };
        assert!(
            vm > native + native / 50,
            "VM run ({vm}) should cost visibly more than native ({native})"
        );
    }

    #[test]
    fn dom0_present_only_in_vm_mode() {
        let mut n = Machine::new(MachineConfig::scaled_core2duo(1));
        n.add_process(&tiny_spec("a", 1_000));
        n.start(None);
        assert_eq!(n.threads_len(), 1);

        let mut v = Machine::new(MachineConfig::scaled_vm(1));
        v.add_process(&tiny_spec("a", 1_000));
        v.start(None);
        assert_eq!(v.threads_len(), 2, "dom0 added");
        assert_eq!(v.proc_name(1), "dom0");
        // Dom0 never gates completion.
        let out = v.run_to_completion(1_000_000_000);
        assert!(out.completed);
        assert_eq!(out.procs.len(), 1);
    }

    #[test]
    fn multithreaded_process_completes() {
        use symbio_workloads::parsec;
        let mut m = Machine::new(MachineConfig::scaled_core2duo(21));
        let mut spec = parsec::swaptions(L2);
        spec.work = 50_000;
        m.add_multithreaded(&spec, 4);
        let out = m.run_to_completion(2_000_000_000);
        assert!(out.completed);
        assert_eq!(out.procs.len(), 1);
        // Four threads' user time summed.
        assert!(out.procs[0].user_cycles >= 4 * 50_000);
    }

    #[test]
    fn co_scheduling_on_one_core_serialises() {
        // Two threads pinned to core 0 while core 1 idles: wall time must
        // be ~2x each thread's user time.
        let mut m = Machine::new(MachineConfig::scaled_core2duo(31));
        m.add_process(&tiny_spec("a", 200_000));
        m.add_process(&tiny_spec("b", 200_000));
        m.start(Some(&Mapping::new(vec![0, 0])));
        let out = m.run_to_completion(1_000_000_000);
        assert!(out.completed);
        let total_user: u64 = out.procs.iter().map(|p| p.user_cycles).sum();
        let wall = out.procs.iter().map(|p| p.wall_cycles).max().unwrap();
        assert!(
            wall >= total_user * 9 / 10,
            "wall {wall} should approach summed user {total_user}"
        );
        assert!(m.switches() > 0);
    }
}
