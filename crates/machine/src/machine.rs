//! The multi-core machine engine.

use crate::config::MachineConfig;
use crate::mapping::Mapping;
use crate::sched::Scheduler;
use crate::thread::{ProcView, Thread, ThreadView};
use serde::{Deserialize, Serialize};
use symbio_cache::{AccessLevel, Address, Dram, MemorySystem};
use symbio_cbf::{NullSink, SignatureSample, SignatureUnit};
use symbio_workloads::{Op, Pattern, ThreadSpec, WorkloadGen, WorkloadSpec};

/// Shift applied to `pid + 1` to namespace each process's address space.
const ASID_SHIFT: u32 = 44;
/// Page size for the translation model (4 KiB).
const PAGE_SHIFT: u32 = 12;
/// Physical page-frame number mask (40-bit physical space).
const PFN_MASK: u64 = (1 << 28) - 1;

/// Deterministic vpage→pfn scatter (SplitMix64 finalizer). Stands in for
/// the OS page allocator: virtually-contiguous pages land on effectively
/// random frames, so cache-set usage is uniform per process.
#[inline]
fn translate_page(vpage: u64) -> u64 {
    let mut z = vpage.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)) & PFN_MASK
}

/// How a thread's generator is rebuilt when its run completes and the
/// benchmark is restarted (the paper restarts co-runners until the longest
/// benchmark finishes).
#[derive(Debug, Clone)]
enum GenFactory {
    Single(WorkloadSpec),
    Multi(ThreadSpec, usize),
}

impl GenFactory {
    fn make(&self, seed: u64) -> WorkloadGen {
        match self {
            GenFactory::Single(spec) => spec.instantiate(seed),
            GenFactory::Multi(spec, inner) => spec.instantiate(seed, *inner),
        }
    }
}

/// Result of one process in a measurement run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProcOutcome {
    /// Process id.
    pub pid: usize,
    /// Workload name.
    pub name: String,
    /// User time: summed cycles its threads executed up to each thread's
    /// first completion (the `time(1)` "user" figure the paper tabulates).
    pub user_cycles: u64,
    /// Wall clock (core time) at which the process finished its first run.
    pub wall_cycles: u64,
}

/// Result of [`Machine::run_to_completion`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Whether every gating process completed at least one run.
    pub completed: bool,
    /// Frontier clock when the run stopped.
    pub wall_cycles: u64,
    /// Per-process outcomes (gating processes only), pid order.
    pub procs: Vec<ProcOutcome>,
    /// Total L2 accesses across every thread of the run (observability:
    /// feeds the sweep engine's throughput counters).
    pub l2_accesses: u64,
    /// Total L2 misses across every thread of the run.
    pub l2_misses: u64,
}

impl RunOutcome {
    /// User time of a process by name.
    pub fn user_time(&self, name: &str) -> Option<u64> {
        self.procs
            .iter()
            .find(|p| p.name == name)
            .map(|p| p.user_cycles)
    }
}

/// Scheduling-relevant events produced by executing one operation; the
/// batched run loops use them to fall back to the slow path exactly where
/// the unbatched engine would have re-evaluated state.
#[derive(Debug, Clone, Copy)]
struct StepEvents {
    /// The quantum expired and the thread was switched out (core now idle
    /// between threads; frontier and dispatch state must be recomputed).
    preempted: bool,
    /// A gating thread finished its first run (`all_complete` may have
    /// flipped).
    gating_first_completion: bool,
}

/// The simulated machine (see the crate docs for the architecture).
#[derive(Debug)]
pub struct Machine {
    cfg: MachineConfig,
    mem: MemorySystem,
    /// One signature unit per cache domain (empty when the signature is
    /// disabled). Each bank is sized to its own domain's core count and
    /// sees domain-local core ids.
    sig: Vec<SignatureUnit>,
    /// Global core id → owning cache domain.
    domain_of: Vec<usize>,
    /// Domain → first global core id.
    domain_start: Vec<usize>,
    sched: Scheduler,
    threads: Vec<Thread>,
    factories: Vec<GenFactory>,
    quantum_divisor: Vec<u64>,
    proc_names: Vec<String>,
    proc_threads: Vec<Vec<usize>>,
    gating_procs: usize,
    clocks: Vec<u64>,
    switches: u64,
    jitter_state: u64,
    /// Reused signature-sample buffer: context switches are the most
    /// frequent non-op event, and with this (plus the unit's RBV scratch)
    /// they stay off the allocator entirely.
    sample_scratch: SignatureSample,
    sealed: bool,
}

impl Machine {
    /// Build an empty machine from a configuration.
    ///
    /// Panics on a structurally invalid configuration; use
    /// [`MachineConfig::validate`] (or the experiment-config builder) to
    /// get a typed error instead.
    pub fn new(cfg: MachineConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid machine configuration: {e}");
        }
        let mem = MemorySystem::new(
            cfg.topology,
            cfg.l1,
            cfg.l2,
            cfg.policy,
            Dram::new(cfg.dram.0, cfg.dram.1),
            cfg.seed,
        );
        let sig = if cfg.signature.is_some() {
            (0..cfg.topology.domains())
                .map(|d| {
                    let bank = cfg
                        .signature_config_for(cfg.topology.domain(d).cores)
                        .expect("signature enabled");
                    SignatureUnit::new(bank)
                })
                .collect()
        } else {
            Vec::new()
        };
        let domain_of = (0..cfg.cores).map(|c| cfg.topology.domain_of(c)).collect();
        let domain_start = (0..cfg.topology.domains())
            .map(|d| cfg.topology.core_start(d))
            .collect();
        Machine {
            mem,
            sig,
            domain_of,
            domain_start,
            sched: Scheduler::new(cfg.cores),
            threads: Vec::new(),
            factories: Vec::new(),
            quantum_divisor: Vec::new(),
            proc_names: Vec::new(),
            proc_threads: Vec::new(),
            gating_procs: 0,
            clocks: vec![0; cfg.cores],
            switches: 0,
            jitter_state: cfg.seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
            sample_scratch: SignatureSample::default(),
            cfg,
            sealed: false,
        }
    }

    /// Scheduling quantum with ±50 % deterministic jitter.
    ///
    /// Real machines' per-core schedulers drift relative to each other
    /// (timer skew, interrupts, syscalls); without jitter the simulated
    /// cores rotate their run queues in perfect lockstep and the identity
    /// of the *concurrently running* co-runner is frozen by initial queue
    /// phase — which makes two of the three 4-on-2 mappings behaviourally
    /// identical and defeats the contention analysis. Jitter restores the
    /// drift so a time-shared pair faces every other-core process in turn.
    /// The jitter is wide (uniform in [q/2, 3q/2]) because simulated runs
    /// span only a handful of quanta, where a real benchmark spans ~10^3 —
    /// phase mixing must happen correspondingly faster.
    fn jittered_quantum(&mut self, base: u64) -> u64 {
        self.jitter_state ^= self.jitter_state << 13;
        self.jitter_state ^= self.jitter_state >> 7;
        self.jitter_state ^= self.jitter_state << 17;
        let span = base; // +/- 50%
        if span == 0 {
            return base.max(1);
        }
        base - span / 2 + self.jitter_state % span
    }

    /// The machine's configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    fn add_thread_raw(
        &mut self,
        pid: usize,
        factory: GenFactory,
        gating: bool,
        quantum_divisor: u64,
    ) -> usize {
        let tid = self.threads.len();
        let base_seed = self
            .cfg
            .seed
            .wrapping_add((tid as u64 + 1).wrapping_mul(0xD1B54A32D192ED03));
        let gen = factory.make(base_seed);
        self.threads
            .push(Thread::new(tid, pid, gen, base_seed, gating));
        self.factories.push(factory);
        self.quantum_divisor.push(quantum_divisor);
        self.proc_threads[pid].push(tid);
        tid
    }

    /// Add a single-threaded process; returns its pid. Must be called
    /// before [`Machine::start`].
    pub fn add_process(&mut self, spec: &WorkloadSpec) -> usize {
        assert!(!self.sealed, "cannot add processes after start()");
        let pid = self.proc_names.len();
        self.proc_names.push(spec.name.clone());
        self.proc_threads.push(Vec::new());
        self.add_thread_raw(pid, GenFactory::Single(spec.clone()), true, 1);
        self.gating_procs += 1;
        pid
    }

    /// Add a multi-threaded process with `n` threads; returns its pid.
    pub fn add_multithreaded(&mut self, spec: &ThreadSpec, n: usize) -> usize {
        assert!(!self.sealed, "cannot add processes after start()");
        assert!(n >= 1);
        let pid = self.proc_names.len();
        self.proc_names.push(spec.name.clone());
        self.proc_threads.push(Vec::new());
        for inner in 0..n {
            self.add_thread_raw(pid, GenFactory::Multi(spec.clone(), inner), true, 1);
        }
        self.gating_procs += 1;
        pid
    }

    /// Add a non-gating background service (Dom0-style): it runs forever
    /// with a reduced quantum share and does not block completion.
    pub fn add_background(&mut self, spec: &WorkloadSpec, quantum_divisor: u64) -> usize {
        assert!(!self.sealed, "cannot add processes after start()");
        let pid = self.proc_names.len();
        self.proc_names.push(spec.name.clone());
        self.proc_threads.push(Vec::new());
        self.add_thread_raw(
            pid,
            GenFactory::Single(spec.clone()),
            false,
            quantum_divisor.max(1),
        );
        pid
    }

    /// The Dom0 control-domain service workload for the configured L2.
    pub fn dom0_spec(&self) -> WorkloadSpec {
        let l2 = self.cfg.l2.size_bytes;
        WorkloadSpec {
            name: "dom0".into(),
            pattern: Pattern::HotCold {
                hot: l2 / 16,
                cold: l2 / 2,
                hot_prob: 0.7,
            },
            compute_gap: (5, 15),
            write_ratio: 0.3,
            work: u64::MAX / 2,
        }
    }

    /// Seal the process table, place threads on cores (round-robin for
    /// managed threads unless `initial` is given; Dom0 — added here when
    /// the virtualization model asks for it — goes to core 0).
    pub fn start(&mut self, initial: Option<&Mapping>) {
        assert!(!self.sealed, "start() called twice");
        let managed = self.threads.len();
        if self.cfg.virt.is_some_and(|v| v.dom0) {
            let spec = self.dom0_spec();
            self.add_background(&spec, 8);
        }
        self.sealed = true;
        let default = Mapping::round_robin(managed, self.cfg.cores);
        let mapping = initial.unwrap_or(&default);
        assert_eq!(
            mapping.len(),
            managed,
            "initial mapping must cover every managed thread"
        );
        for (tid, core) in mapping.iter() {
            assert!(core < self.cfg.cores);
            self.sched.enqueue(core, tid);
        }
        // Background threads (everything after `managed`) go to core 0.
        for tid in managed..self.threads.len() {
            self.sched.enqueue(0, tid);
        }
    }

    /// Number of managed (gating) threads — the domain of [`Mapping`]s.
    pub fn managed_threads(&self) -> usize {
        self.threads
            .iter()
            .filter(|t| t.counts_for_completion)
            .count()
    }

    /// Move threads according to `mapping` (affinity change). Running
    /// threads being migrated are switched out immediately (their signature
    /// sample is taken, and the context-switch cost is charged).
    pub fn apply_mapping(&mut self, mapping: &Mapping) {
        assert!(self.sealed, "start() the machine before remapping");
        for (tid, target) in mapping.iter() {
            debug_assert!(self.threads[tid].counts_for_completion);
            if self.sched.core_of(tid) == Some(target) {
                continue;
            }
            if let Some((old_core, was_running)) = self.sched.remove(tid) {
                if was_running {
                    self.take_signature_sample(old_core, tid);
                    self.clocks[old_core] += self.switch_cost();
                    self.switches += 1;
                }
            }
            self.sched.enqueue(target, tid);
            // A previously idle core inherits the frontier clock so the
            // migrated thread does not "time travel".
            let frontier = self.active_min_clock().unwrap_or(0);
            if self.clocks[target] < frontier && self.sched.load(target) == 1 {
                self.clocks[target] = frontier;
            }
        }
    }

    /// Current thread→core assignment of managed threads.
    pub fn current_mapping(&self) -> Mapping {
        let managed = self.managed_threads();
        Mapping::new(
            (0..managed)
                .map(|tid| self.sched.core_of(tid).expect("managed thread placed"))
                .collect(),
        )
    }

    fn switch_cost(&self) -> u64 {
        self.cfg.timing.context_switch + self.cfg.virt.map_or(0, |v| v.vm_switch_extra)
    }

    fn take_signature_sample(&mut self, core: usize, tid: usize) {
        let d = self.domain_of[core];
        if let Some(sig) = self.sig.get_mut(d) {
            // The domain's bank indexes cores locally; the sampled
            // per-core vectors therefore stay domain-local, but the core
            // *label* on the sample is restored to the global id so
            // `ThreadView::last_core` keeps machine-wide meaning.
            sig.switch_out_into(core - self.domain_start[d], &mut self.sample_scratch);
            self.sample_scratch.core = core;
            self.threads[tid].sig.update(&self.sample_scratch);
        }
    }

    fn active_min_clock(&self) -> Option<u64> {
        (0..self.cfg.cores)
            .filter(|&c| self.sched.has_work(c))
            .map(|c| self.clocks[c])
            .min()
    }

    /// The simulation frontier: the smallest clock among active cores (or
    /// the largest clock overall when everything is idle).
    pub fn now(&self) -> u64 {
        self.active_min_clock()
            .unwrap_or_else(|| self.clocks.iter().copied().max().unwrap_or(0))
    }

    /// Execute one operation on the most-behind active core. Returns false
    /// when no core has work.
    pub fn step_one(&mut self) -> bool {
        debug_assert!(self.sealed, "start() the machine first");
        let Some(core) = self.frontier_core() else {
            return false;
        };
        let tid = self.ensure_current(core);
        self.exec_op(core, tid);
        true
    }

    /// The most-behind active core: first minimum of the active clocks
    /// (lowest index wins ties, matching `min_by_key`).
    #[inline]
    fn frontier_core(&self) -> Option<usize> {
        (0..self.cfg.cores)
            .filter(|&c| self.sched.has_work(c))
            .min_by_key(|&c| self.clocks[c])
    }

    /// The thread running on `core`, dispatching (and arming a jittered
    /// quantum) when the core is between threads.
    #[inline]
    fn ensure_current(&mut self, core: usize) -> usize {
        match self.sched.current(core) {
            Some(t) => t,
            None => {
                let base = self.cfg.effective_quantum();
                let quantum = self.jittered_quantum(base);
                let t = self
                    .sched
                    .dispatch(core, quantum) // provisional; corrected below
                    .expect("has_work implies dispatchable");
                let div = self.quantum_divisor[t];
                if div > 1 {
                    self.sched.rearm(core, quantum / div);
                }
                t
            }
        }
    }

    /// The largest value `clocks[core]` may hold *before* an op such that
    /// the op is one the unbatched engine would also execute next: `core`
    /// must still win the frontier tie-break against every other active
    /// core (whose clocks cannot move during the batch) and stay below
    /// `stop_before`. Requires `clocks[core] < stop_before`.
    #[inline]
    fn batch_limit(&self, core: usize, stop_before: u64) -> u64 {
        let mut limit = stop_before - 1;
        for c in 0..self.cfg.cores {
            if c != core && self.sched.has_work(c) {
                // Lower-index cores win ties, so `core` leads only while
                // strictly behind them (their clock is >= 1 here because
                // `core` is currently the frontier).
                let v = if c < core {
                    self.clocks[c] - 1
                } else {
                    self.clocks[c]
                };
                limit = limit.min(v);
            }
        }
        limit
    }

    /// Execute one operation of `tid` on `core` (cost model, memory
    /// system, virtualization tax, completion and quantum accounting).
    #[inline]
    fn exec_op(&mut self, core: usize, tid: usize) -> StepEvents {
        let op = self.threads[tid].gen.next_op();
        let instrs = op.instructions();
        let mut cost = match op {
            Op::Compute(n) => u64::from(n),
            Op::Load(a) | Op::Store(a) => {
                let pid = self.threads[tid].pid as u64;
                let va = a | ((pid + 1) << ASID_SHIFT);
                let addr = if self.cfg.paging {
                    let pfn = translate_page(va >> PAGE_SHIFT);
                    Address((pfn << PAGE_SHIFT) | (va & ((1 << PAGE_SHIFT) - 1)))
                } else {
                    Address(va)
                };
                let now = self.clocks[core];
                let d = self.domain_of[core];
                let resp = match self.sig.get_mut(d) {
                    Some(unit) => self.mem.access(core, addr, op.is_write(), now, unit),
                    None => self
                        .mem
                        .access(core, addr, op.is_write(), now, &mut NullSink),
                };
                let t = &mut self.threads[tid];
                t.mem_ops += 1;
                if resp.level != AccessLevel::L1 {
                    t.l2_accesses += 1;
                    if resp.level == AccessLevel::Memory {
                        t.l2_misses += 1;
                    }
                }
                self.cfg.timing.mem_cost(resp.level, resp.dram_cycles)
            }
        };

        // One thread borrow covers the tax, retirement counters and the
        // completion check — the indexing happens once, not four times.
        let run_complete = {
            let t = &mut self.threads[tid];
            if let Some(v) = self.cfg.virt {
                let acc = t.tax_accum + v.tax_num * instrs;
                cost += acc / v.tax_den;
                t.tax_accum = acc % v.tax_den;
            }
            t.user_cycles += cost;
            t.retired += instrs;
            t.run_complete()
        };
        self.clocks[core] += cost;
        let gating_first_completion = if run_complete {
            self.complete_and_restart(tid, core)
        } else {
            false
        };
        let preempted = if self.sched.charge(core, cost) {
            self.context_switch(core)
        } else {
            false
        };
        StepEvents {
            preempted,
            gating_first_completion,
        }
    }

    /// Restart a finished run; true when this was the *first* completion of
    /// a gating thread (the only event that can flip [`Machine::all_complete`],
    /// so batched drivers re-check it exactly there).
    fn complete_and_restart(&mut self, tid: usize, core: usize) -> bool {
        let t = &mut self.threads[tid];
        t.completions += 1;
        let mut gating_first = false;
        if t.first_completion_user.is_none() {
            t.first_completion_user = Some(t.user_cycles);
            t.first_completion_wall = Some(self.clocks[core]);
            gating_first = t.counts_for_completion;
        }
        t.retired = 0;
        let seed = t
            .base_seed
            .wrapping_add(u64::from(t.completions).wrapping_mul(0xBF58476D1CE4E5B9));
        t.gen = self.factories[tid].make(seed);
        gating_first
    }

    /// Quantum expiry; true when the running thread was actually preempted
    /// (a solo thread just re-arms and keeps running).
    fn context_switch(&mut self, core: usize) -> bool {
        let Some(cur) = self.sched.current(core) else {
            return false;
        };
        self.take_signature_sample(core, cur);
        if self.sched.load(core) > 1 {
            self.sched.preempt(core);
            self.clocks[core] += self.switch_cost();
            self.switches += 1;
            true
        } else {
            // Solo thread: no one to switch to; just re-arm the quantum
            // (the snapshot above still refreshes the signature sample).
            let base = self.cfg.effective_quantum() / self.quantum_divisor[cur];
            let quantum = self.jittered_quantum(base.max(1));
            self.sched.rearm(core, quantum.max(1));
            false
        }
    }

    /// Run until the frontier advances by `cycles` (or work runs out).
    ///
    /// Batched: the frontier scan and scheduler lookup are hoisted out of
    /// the op loop — while the dispatched thread stays the frontier (other
    /// active clocks cannot move meanwhile) it runs in a tight inner loop,
    /// breaking only on preemption or on catching up to [`Self::batch_limit`].
    /// The op sequence is cycle-identical to stepping one op at a time.
    pub fn run_for(&mut self, cycles: u64) {
        debug_assert!(self.sealed, "start() the machine first");
        let target = self.now().saturating_add(cycles);
        while let Some(core) = self.frontier_core() {
            if self.clocks[core] >= target {
                break;
            }
            let limit = self.batch_limit(core, target);
            let tid = self.ensure_current(core);
            loop {
                let ev = self.exec_op(core, tid);
                if ev.preempted || self.clocks[core] > limit {
                    break;
                }
                debug_assert_eq!(self.sched.current(core), Some(tid));
            }
        }
    }

    /// Whether every gating process has completed at least one run.
    pub fn all_complete(&self) -> bool {
        self.threads
            .iter()
            .filter(|t| t.counts_for_completion)
            .all(|t| t.completions >= 1)
    }

    /// Run until every gating process completes once, or `max_cycles` of
    /// frontier progress elapse.
    ///
    /// Batched like [`Machine::run_for`]; additionally breaks the inner
    /// loop at gating first-completion events so `all_complete` is
    /// re-checked at the same op boundaries as unbatched stepping
    /// (completions are the only events that can flip it).
    pub fn run_to_completion(&mut self, max_cycles: u64) -> RunOutcome {
        if !self.sealed {
            self.start(None);
        }
        let deadline = self.now().saturating_add(max_cycles);
        'outer: while !self.all_complete() {
            let Some(core) = self.frontier_core() else {
                break;
            };
            if self.clocks[core] >= deadline {
                break;
            }
            let limit = self.batch_limit(core, deadline);
            let tid = self.ensure_current(core);
            loop {
                let ev = self.exec_op(core, tid);
                if ev.gating_first_completion {
                    continue 'outer;
                }
                if ev.preempted || self.clocks[core] > limit {
                    break;
                }
            }
        }
        self.outcome()
    }

    /// Snapshot the per-process outcome so far.
    pub fn outcome(&self) -> RunOutcome {
        let procs = (0..self.proc_names.len())
            .filter(|&pid| {
                self.proc_threads[pid]
                    .iter()
                    .all(|&t| self.threads[t].counts_for_completion)
            })
            .map(|pid| {
                let tids = &self.proc_threads[pid];
                let user: u64 = tids
                    .iter()
                    .map(|&t| {
                        let th = &self.threads[t];
                        th.first_completion_user.unwrap_or(th.user_cycles)
                    })
                    .sum();
                let wall = tids
                    .iter()
                    .map(|&t| self.threads[t].first_completion_wall.unwrap_or(u64::MAX))
                    .max()
                    .unwrap_or(u64::MAX);
                ProcOutcome {
                    pid,
                    name: self.proc_names[pid].clone(),
                    user_cycles: user,
                    wall_cycles: wall,
                }
            })
            .collect();
        RunOutcome {
            completed: self.all_complete(),
            wall_cycles: self.now(),
            procs,
            l2_accesses: self.threads.iter().map(|t| t.l2_accesses).sum(),
            l2_misses: self.threads.iter().map(|t| t.l2_misses).sum(),
        }
    }

    /// The "syscall" interface of Section 3.2: per-process, per-thread
    /// signature contexts and perf counters for the allocation policies.
    pub fn query_views(&self) -> Vec<ProcView> {
        (0..self.proc_names.len())
            .filter(|&pid| {
                self.proc_threads[pid]
                    .iter()
                    .all(|&t| self.threads[t].counts_for_completion)
            })
            .map(|pid| ProcView {
                pid,
                name: self.proc_names[pid].clone(),
                threads: self.proc_threads[pid]
                    .iter()
                    .map(|&t| {
                        let th = &self.threads[t];
                        ThreadView {
                            tid: th.tid,
                            pid,
                            name: self.proc_names[pid].clone(),
                            occupancy: th.sig.occupancy_ewma,
                            symbiosis: th.sig.symbiosis_ewma.clone(),
                            overlap: th.sig.overlap_ewma.clone(),
                            last_occupancy: th.sig.last_occupancy,
                            last_core: th.sig.last_core,
                            samples: th.sig.samples,
                            filter_len: th.sig.filter_len,
                            l2_miss_rate: th.l2_miss_rate(),
                            l2_misses: th.l2_misses,
                            retired: th.retired,
                        }
                    })
                    .collect(),
            })
            .collect()
    }

    /// Direct access to a thread (tests, figure probes).
    pub fn thread(&self, tid: usize) -> &Thread {
        &self.threads[tid]
    }

    /// Total threads including background.
    pub fn threads_len(&self) -> usize {
        self.threads.len()
    }

    /// Process name by pid.
    pub fn proc_name(&self, pid: usize) -> &str {
        &self.proc_names[pid]
    }

    /// Domain 0's signature unit, when attached (the machine-wide unit on
    /// a single-domain machine — the shape figure probes expect).
    pub fn signature(&self) -> Option<&SignatureUnit> {
        self.sig.first()
    }

    /// The signature unit of cache domain `d`, when attached.
    pub fn signature_of(&self, d: usize) -> Option<&SignatureUnit> {
        self.sig.get(d)
    }

    /// The memory system (footprint ground truth, stats).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    /// Context switches performed.
    pub fn switches(&self) -> u64 {
        self.switches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symbio_workloads::spec2006;

    const L2: u64 = 256 << 10;

    fn tiny_spec(name: &str, work: u64) -> WorkloadSpec {
        WorkloadSpec {
            name: name.into(),
            pattern: Pattern::RandomUniform { region: 16 << 10 },
            compute_gap: (2, 4),
            write_ratio: 0.2,
            work,
        }
    }

    #[test]
    fn single_process_completes() {
        let mut m = Machine::new(MachineConfig::scaled_core2duo(1));
        m.add_process(&tiny_spec("a", 50_000));
        let out = m.run_to_completion(1_000_000_000);
        assert!(out.completed);
        assert_eq!(out.procs.len(), 1);
        assert!(out.procs[0].user_cycles > 50_000);
    }

    #[test]
    fn four_processes_two_cores_all_complete() {
        let mut m = Machine::new(MachineConfig::scaled_core2duo(2));
        for n in ["a", "b", "c", "d"] {
            m.add_process(&tiny_spec(n, 30_000));
        }
        let out = m.run_to_completion(1_000_000_000);
        assert!(out.completed);
        assert_eq!(out.procs.len(), 4);
        for p in &out.procs {
            assert!(p.user_cycles > 0);
        }
    }

    #[test]
    fn signature_samples_flow_to_contexts() {
        let mut m = Machine::new(MachineConfig::scaled_core2duo(3));
        for n in ["a", "b", "c", "d"] {
            m.add_process(&tiny_spec(n, 10_000_000));
        }
        m.start(None);
        m.run_for(12_000_000);
        let views = m.query_views();
        assert_eq!(views.len(), 4);
        for v in &views {
            let t = &v.threads[0];
            assert!(t.samples > 0, "{} has no signature samples", v.name);
            assert_eq!(t.symbiosis.len(), 2);
        }
    }

    #[test]
    fn multidomain_signature_vectors_are_domain_local() {
        let mut m = Machine::new(MachineConfig::scaled_multidomain(3, 2));
        for n in ["a", "b", "c", "d"] {
            m.add_process(&tiny_spec(n, 10_000_000));
        }
        m.start(None);
        m.run_for(12_000_000);
        assert!(m.signature_of(1).is_some());
        assert!(m.signature_of(2).is_none());
        let views = m.query_views();
        let mut saw_domain_1 = false;
        for v in &views {
            let t = &v.threads[0];
            assert!(t.samples > 0, "{} has no signature samples", v.name);
            assert_eq!(t.symbiosis.len(), 2, "vectors sized to the domain");
            let core = t.last_core.expect("sampled");
            assert!(core < 4, "core label stays global");
            saw_domain_1 |= core >= 2;
        }
        assert!(saw_domain_1, "round-robin spreads threads across domains");
    }

    #[test]
    fn no_signature_unit_when_disabled() {
        let mut m = Machine::new(MachineConfig::scaled_core2duo(1).without_signature());
        m.add_process(&tiny_spec("a", 10_000));
        let _ = m.run_to_completion(100_000_000);
        assert!(m.signature().is_none());
    }

    #[test]
    fn mapping_confines_threads_to_cores() {
        let mut m = Machine::new(MachineConfig::scaled_core2duo(4));
        for n in ["a", "b", "c", "d"] {
            m.add_process(&tiny_spec(n, 10_000_000));
        }
        let map = Mapping::new(vec![0, 0, 1, 1]);
        m.start(Some(&map));
        m.run_for(500_000);
        assert_eq!(m.current_mapping(), map);
    }

    #[test]
    fn remapping_moves_threads() {
        let mut m = Machine::new(MachineConfig::scaled_core2duo(5));
        for n in ["a", "b", "c", "d"] {
            m.add_process(&tiny_spec(n, 10_000_000));
        }
        m.start(None);
        m.run_for(300_000);
        let map = Mapping::new(vec![0, 0, 1, 1]);
        m.apply_mapping(&map);
        m.run_for(300_000);
        assert_eq!(m.current_mapping(), map);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = || {
            let mut m = Machine::new(MachineConfig::scaled_core2duo(9));
            m.add_process(&spec2006::gobmk(L2));
            m.add_process(&spec2006::soplex(L2));
            m.run_to_completion(2_000_000_000)
        };
        let a = run();
        let b = run();
        assert_eq!(a.procs[0].user_cycles, b.procs[0].user_cycles);
        assert_eq!(a.procs[1].user_cycles, b.procs[1].user_cycles);
    }

    #[test]
    fn different_seeds_differ() {
        let run = |s| {
            let mut m = Machine::new(MachineConfig::scaled_core2duo(s));
            m.add_process(&tiny_spec("a", 200_000));
            m.run_to_completion(1_000_000_000).procs[0].user_cycles
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn vm_mode_adds_overhead() {
        let native = {
            let mut m = Machine::new(MachineConfig::scaled_core2duo(11));
            m.add_process(&tiny_spec("a", 100_000));
            m.run_to_completion(1_000_000_000).procs[0].user_cycles
        };
        let vm = {
            let mut m = Machine::new(MachineConfig::scaled_vm(11));
            m.add_process(&tiny_spec("a", 100_000));
            m.run_to_completion(1_000_000_000).procs[0].user_cycles
        };
        assert!(
            vm > native + native / 50,
            "VM run ({vm}) should cost visibly more than native ({native})"
        );
    }

    #[test]
    fn dom0_present_only_in_vm_mode() {
        let mut n = Machine::new(MachineConfig::scaled_core2duo(1));
        n.add_process(&tiny_spec("a", 1_000));
        n.start(None);
        assert_eq!(n.threads_len(), 1);

        let mut v = Machine::new(MachineConfig::scaled_vm(1));
        v.add_process(&tiny_spec("a", 1_000));
        v.start(None);
        assert_eq!(v.threads_len(), 2, "dom0 added");
        assert_eq!(v.proc_name(1), "dom0");
        // Dom0 never gates completion.
        let out = v.run_to_completion(1_000_000_000);
        assert!(out.completed);
        assert_eq!(out.procs.len(), 1);
    }

    #[test]
    fn multithreaded_process_completes() {
        use symbio_workloads::parsec;
        let mut m = Machine::new(MachineConfig::scaled_core2duo(21));
        let mut spec = parsec::swaptions(L2);
        spec.work = 50_000;
        m.add_multithreaded(&spec, 4);
        let out = m.run_to_completion(2_000_000_000);
        assert!(out.completed);
        assert_eq!(out.procs.len(), 1);
        // Four threads' user time summed.
        assert!(out.procs[0].user_cycles >= 4 * 50_000);
    }

    #[test]
    fn co_scheduling_on_one_core_serialises() {
        // Two threads pinned to core 0 while core 1 idles: wall time must
        // be ~2x each thread's user time.
        let mut m = Machine::new(MachineConfig::scaled_core2duo(31));
        m.add_process(&tiny_spec("a", 200_000));
        m.add_process(&tiny_spec("b", 200_000));
        m.start(Some(&Mapping::new(vec![0, 0])));
        let out = m.run_to_completion(1_000_000_000);
        assert!(out.completed);
        let total_user: u64 = out.procs.iter().map(|p| p.user_cycles).sum();
        let wall = out.procs.iter().map(|p| p.wall_cycles).max().unwrap();
        assert!(
            wall >= total_user * 9 / 10,
            "wall {wall} should approach summed user {total_user}"
        );
        assert!(m.switches() > 0);
    }
}
