//! # symbio-machine
//!
//! The execution substrate of the reproduction: a deterministic multi-core
//! machine simulator playing the role of both evaluation phases in the
//! paper's methodology (Section 4):
//!
//! * **phase 1 — "Simics"**: run a workload mix with the Bloom-filter
//!   signature unit attached, let an allocation policy query the
//!   per-process signature contexts at a fixed interval (the paper's
//!   100 ms), and record the majority mapping;
//! * **phase 2 — "real machine"**: run every candidate mapping to
//!   completion with the signature hardware disabled and report per-process
//!   *user time* (cycles the process actually executed, the `time`-style
//!   metric the paper tabulates).
//!
//! The simulator is an interleaved-by-cycle multi-core engine:
//! each core has a local clock; the engine always advances the core with
//! the smallest clock, so a faster process naturally issues more of the
//! interleaved shared-L2 traffic. On top sit:
//!
//! * an OS scheduler with per-core run queues, a fixed quantum, and
//!   affinity bits ([`sched`]) — the paper's user-level allocator only sets
//!   affinities, never bypasses the OS;
//! * per-thread signature contexts updated at every context switch
//!   ([`thread`]) — the `(2 + N)`-entry structure of Section 3.2;
//! * per-thread performance counters (misses, accesses) — the
//!   event-counter alternative the paper argues against, needed both for
//!   the Figure 2/5 comparison and for the miss-rate baseline scheduler;
//! * an optional virtualization layer ([`config::VirtConfig`]): per-
//!   instruction hypervisor tax, costlier VM switches, a shorter hypervisor
//!   quantum and a Dom0 background service — the reasons Figure 11's
//!   improvements are roughly half of Figure 10's.

#![warn(missing_docs)]

pub mod config;
pub mod machine;
pub mod mapping;
pub mod sched;
pub mod snapshot;
pub mod thread;
pub mod timing;

pub use config::{MachineConfig, VirtConfig};
pub use machine::{Machine, ProcOutcome, RunOutcome};
pub use mapping::Mapping;
pub use snapshot::{ExportError, SigSnapshot};
pub use symbio_cache::{CacheDomain, Topology};
pub use thread::{ProcView, SigContext, ThreadView};
pub use timing::TimingModel;
