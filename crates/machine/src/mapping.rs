//! Thread→core mappings.

use serde::{Deserialize, Serialize};

/// An assignment of every thread (by flat thread id) to a core.
///
/// This is the object allocation policies produce and the machine's
/// affinity interface consumes — the moral equivalent of the paper's
/// user-level process setting affinity bits via `sched_setaffinity`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Mapping {
    cores: Vec<usize>,
}

impl Mapping {
    /// Build from a per-thread core vector.
    pub fn new(cores: Vec<usize>) -> Self {
        Mapping { cores }
    }

    /// Round-robin default placement (`tid % n_cores`) — the "default
    /// schedule with which the processes began execution" referenced in
    /// Section 5.3.
    pub fn round_robin(threads: usize, n_cores: usize) -> Self {
        Mapping {
            cores: (0..threads).map(|t| t % n_cores).collect(),
        }
    }

    /// Core of thread `tid`.
    #[inline]
    pub fn core_of(&self, tid: usize) -> usize {
        self.cores[tid]
    }

    /// Number of threads covered.
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// True when no threads are covered.
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Iterate `(tid, core)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.cores.iter().copied().enumerate()
    }

    /// Thread ids assigned to `core`, ascending.
    pub fn threads_on(&self, core: usize) -> Vec<usize> {
        self.cores
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c == core)
            .map(|(t, _)| t)
            .collect()
    }

    /// Group sizes per core (for balance checks).
    pub fn group_sizes(&self, n_cores: usize) -> Vec<usize> {
        let mut sizes = vec![0; n_cores];
        for &c in &self.cores {
            sizes[c] += 1;
        }
        sizes
    }

    /// A canonical key that identifies the *partition* this mapping induces
    /// (which threads are grouped together), ignoring core labels — two
    /// mappings that co-schedule the same groups are behaviourally
    /// identical on a symmetric machine.
    pub fn partition_key(&self, n_cores: usize) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> = (0..n_cores).map(|c| self.threads_on(c)).collect();
        groups.retain(|g| !g.is_empty());
        groups.sort();
        groups
    }

    /// Thread ids assigned to any core of the half-open core range
    /// `core_range` (one cache domain), ascending.
    pub fn threads_in_domain(&self, core_range: std::ops::Range<usize>) -> Vec<usize> {
        self.cores
            .iter()
            .enumerate()
            .filter(|&(_, &c)| core_range.contains(&c))
            .map(|(t, _)| t)
            .collect()
    }

    /// [`Mapping::partition_key`] restricted to one domain's core range:
    /// the canonical co-schedule groups formed *inside* that domain. Two
    /// mappings with equal `domain_key`s for domain `d` are behaviourally
    /// identical within `d` (same groups, labels ignored), which is what
    /// per-domain hysteresis compares to decide whether a remap actually
    /// churns the domain.
    pub fn domain_key(&self, core_range: std::ops::Range<usize>) -> Vec<Vec<usize>> {
        let mut groups: Vec<Vec<usize>> = core_range.map(|c| self.threads_on(c)).collect();
        groups.retain(|g| !g.is_empty());
        groups.sort();
        groups
    }
}

impl symbio_eval::CoreAssignment for Mapping {
    fn core_of(&self, tid: usize) -> usize {
        Mapping::core_of(self, tid)
    }
    fn len(&self) -> usize {
        Mapping::len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_interleaves() {
        let m = Mapping::round_robin(4, 2);
        assert_eq!(m.core_of(0), 0);
        assert_eq!(m.core_of(1), 1);
        assert_eq!(m.core_of(2), 0);
        assert_eq!(m.core_of(3), 1);
        assert_eq!(m.threads_on(0), vec![0, 2]);
        assert_eq!(m.group_sizes(2), vec![2, 2]);
    }

    #[test]
    fn partition_key_ignores_core_labels() {
        let a = Mapping::new(vec![0, 0, 1, 1]);
        let b = Mapping::new(vec![1, 1, 0, 0]);
        assert_eq!(a.partition_key(2), b.partition_key(2));
        let c = Mapping::new(vec![0, 1, 0, 1]);
        assert_ne!(a.partition_key(2), c.partition_key(2));
    }

    #[test]
    fn domain_key_is_local_and_label_invariant() {
        // 2x2 machine: domain 0 = cores 0..2, domain 1 = cores 2..4.
        let a = Mapping::new(vec![0, 1, 2, 3]);
        let b = Mapping::new(vec![1, 0, 2, 3]); // swap labels inside domain 0
        let c = Mapping::new(vec![0, 1, 3, 2]); // swap labels inside domain 1
        assert_eq!(a.domain_key(0..2), b.domain_key(0..2));
        assert_eq!(a.domain_key(2..4), c.domain_key(2..4));
        // Moving a thread across the domain boundary changes both keys.
        let d = Mapping::new(vec![0, 2, 1, 3]);
        assert_ne!(a.domain_key(0..2), d.domain_key(0..2));
        assert_ne!(a.domain_key(2..4), d.domain_key(2..4));
        assert_eq!(a.threads_in_domain(2..4), vec![2, 3]);
        assert_eq!(d.threads_in_domain(0..2), vec![0, 2]);
    }

    #[test]
    fn empty_mapping() {
        let m = Mapping::new(vec![]);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }
}
