//! # symbio-fleet — the multi-instance coordinator
//!
//! One `symbiod` serves one machine's shared caches; the fleet layer
//! (DESIGN.md §13) shards **millions of process groups across many
//! symbiod backends** behind a coordinator, `fleetd`, that any client
//! reaches with the same versioned envelope `symbiod` speaks.
//!
//! The pieces:
//!
//! * [`assign`] — deterministic rendezvous (HRW) assignment: every
//!   coordinator replica computes identical group→backend routes from
//!   the membership alone, and a membership change moves only ~1/N of
//!   groups (both properties proptest-pinned);
//! * [`routing`] — compact per-group routing state (hashes only, packed
//!   values) with an explicit bytes/group budget;
//! * [`tenant`] — per-tenant group quotas, token-bucket rate limits and
//!   the deterministic shed order used under backend backlog;
//! * [`backend`] — the downstream connection pool (reuses
//!   [`symbio_serve::WireClient`] and the binary envelope);
//! * [`coordinator`] — [`Fleetd`] itself: accept loop, admission,
//!   proxy-with-retry, auto-eviction of dead backends, fleet-wide
//!   metrics aggregation.

#![warn(missing_docs)]

pub mod assign;
pub mod backend;
pub mod coordinator;
pub mod routing;
pub mod tenant;

pub use assign::{Backend, Membership};
pub use backend::BackendPool;
pub use coordinator::{FleetConfig, Fleetd};
pub use routing::{RouteEntry, RoutingTable, DEFAULT_BYTES_PER_GROUP};
pub use tenant::{tenant_of, Admission, TenantRegistry, TenantSpec};
