//! # symbio-fleet — the multi-instance coordinator
//!
//! One `symbiod` serves one machine's shared caches; the fleet layer
//! (DESIGN.md §13) shards **millions of process groups across many
//! symbiod backends** behind a coordinator, `fleetd`, that any client
//! reaches with the same versioned envelope `symbiod` speaks.
//!
//! The pieces:
//!
//! * [`assign`] — deterministic rendezvous (HRW) assignment: every
//!   coordinator replica computes identical group→backend routes from
//!   the membership alone, and a membership change moves only ~1/N of
//!   groups (both properties proptest-pinned);
//! * [`routing`] — compact per-group routing state (hashes only, packed
//!   values) with an explicit bytes/group budget;
//! * [`tenant`] — per-tenant group quotas, token-bucket rate limits and
//!   the deterministic shed order used under backend backlog;
//! * [`backend`] — the downstream connection pool (reuses
//!   [`symbio_serve::WireClient`] and the binary envelope);
//! * [`membership`] — durable membership: the CRC-framed journal a
//!   restarted coordinator replays to a byte-identical routing view,
//!   plus the flap detector that de-bounces eviction;
//! * [`handoff`] — the per-group warm-handoff state machine
//!   (`Settled → Exporting → Importing → Settled`; any failure or
//!   timeout settles cold, never wedges a route);
//! * [`coordinator`] — [`Fleetd`] itself: accept loop, admission,
//!   proxy-with-retry, flap-guarded eviction, orchestrated warm
//!   handoff on rebalance, fleet-wide metrics aggregation.

#![warn(missing_docs)]

pub mod assign;
pub mod backend;
pub mod coordinator;
pub mod handoff;
pub mod membership;
pub mod routing;
pub mod tenant;

pub use assign::{Backend, Membership};
pub use backend::BackendPool;
pub use coordinator::{FleetConfig, Fleetd};
pub use handoff::{Handoff, HandoffEvent, HandoffOutcome, HandoffState};
pub use membership::{
    FlapDetector, MemberJournal, MemberRecord, MemberReplay, MEMBER_JOURNAL_VERSION,
};
pub use routing::{RouteEntry, RoutingTable, DEFAULT_BYTES_PER_GROUP};
pub use tenant::{tenant_of, Admission, TenantRegistry, TenantSpec};
