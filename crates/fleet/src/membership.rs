//! Durable fleet membership (DESIGN.md §14): a CRC-framed journal of
//! membership transitions plus the flap detector that guards eviction.
//!
//! The coordinator's membership — which backends exist, in which epoch —
//! used to live only in memory: a restarted `fleetd` forgot every
//! eviction and drain and came back routing to dead peers. This module
//! makes the membership survivable with the same crash discipline as the
//! engine journal ([`symbio_online::journal`]): each transition is one
//! line, `{crc32:08x} {json}\n`, appended before the transition takes
//! effect, and replay tolerates a torn final line (the crash tail) by
//! truncating it. Because rendezvous routing is a pure function of the
//! membership, replaying the journal reconstructs a byte-identical
//! routing view — same owners, same epoch.
//!
//! The flap detector de-bounces eviction: one failed probe is a *flap*
//! until the same backend fails [`FlapDetector`]'s threshold within its
//! sliding window. Suppressed flaps are counted
//! (`fleet_flaps_suppressed`) and retried; only a proven-dead backend is
//! evicted and journaled.

use crate::assign::Membership;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use symbio::Error;
use symbio_online::journal::crc32;

/// Format version stamped as the journal's first record. Bump on any
/// incompatible change to [`MemberRecord`] or the framing.
pub const MEMBER_JOURNAL_VERSION: u32 = 1;

/// One durable membership transition. Append-ordered; replay folds the
/// sequence into a [`Membership`] whose epoch counter advances exactly
/// as the live coordinator's did.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemberRecord {
    /// Leading header: format version of everything that follows.
    Meta {
        /// Must equal [`MEMBER_JOURNAL_VERSION`] for this build to
        /// replay it.
        version: u32,
    },
    /// The initial membership a fresh coordinator was seeded with.
    Seed {
        /// Backend addresses at seed time.
        backends: Vec<String>,
    },
    /// A backend joined (or rejoined) via the `Assign`/Join handshake.
    Join {
        /// The joining backend's address.
        addr: String,
    },
    /// A backend was evicted after the flap detector proved it dead.
    Evict {
        /// The evicted backend's address.
        addr: String,
    },
    /// A backend was drained on purpose (operator `Assign { remove }`).
    Drain {
        /// The drained backend's address.
        addr: String,
    },
}

/// Encode one record as a checksummed journal line (with trailing `\n`).
pub fn encode_member_frame(record: &MemberRecord) -> symbio::Result<String> {
    let json = serde_json::to_string(record)
        .map_err(|e| Error::InvalidConfig(format!("membership record encode: {e}")))?;
    Ok(format!("{:08x} {json}\n", crc32(json.as_bytes())))
}

/// Decode one journal line (no trailing `\n`). `None` on any fault:
/// bad UTF-8, malformed header, checksum mismatch, unparsable JSON.
pub fn decode_member_frame(line: &[u8]) -> Option<MemberRecord> {
    let text = std::str::from_utf8(line).ok()?;
    let (crc_hex, json) = text.split_once(' ')?;
    if crc_hex.len() != 8 {
        return None;
    }
    let want = u32::from_str_radix(crc_hex, 16).ok()?;
    if crc32(json.as_bytes()) != want {
        return None;
    }
    serde_json::from_str(json).ok()
}

/// Length of the valid frame prefix of raw journal bytes. Everything
/// past it (a torn or corrupt tail) is unreachable by replay and safe
/// to truncate.
fn valid_prefix(data: &[u8]) -> usize {
    let mut pos = 0usize;
    while pos < data.len() {
        let (line, next, terminated) = match data[pos..].iter().position(|&b| b == b'\n') {
            Some(i) => (&data[pos..pos + i], pos + i + 1, true),
            None => (&data[pos..], data.len(), false),
        };
        if line.is_empty() {
            if !terminated {
                break;
            }
            pos = next;
            continue;
        }
        if !terminated || decode_member_frame(line).is_none() {
            break;
        }
        pos = next;
    }
    pos
}

/// Outcome of replaying a membership journal.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberReplay {
    /// The reconstructed membership — `None` when the journal held no
    /// `Seed` yet (a fresh coordinator seeds from its command line and
    /// journals that seed).
    pub membership: Option<Membership>,
    /// Epoch-bearing records (seed/join/evict/drain) replayed.
    pub epochs: u64,
    /// Whether replay stopped at a torn or corrupt tail (which
    /// [`MemberJournal::open`] then truncated).
    pub truncated: bool,
}

/// Fold one record into the replayed membership. Mirrors exactly the
/// mutation the live coordinator performs when it writes the record.
fn apply_member(membership: &mut Option<Membership>, record: &MemberRecord) -> bool {
    match record {
        MemberRecord::Meta { .. } => false,
        MemberRecord::Seed { backends } => {
            *membership = Some(Membership::new(backends.iter().cloned()));
            true
        }
        MemberRecord::Join { addr } => {
            let m = membership.get_or_insert_with(Membership::default);
            m.apply(std::slice::from_ref(addr), &[]);
            true
        }
        MemberRecord::Evict { addr } | MemberRecord::Drain { addr } => {
            let m = membership.get_or_insert_with(Membership::default);
            m.apply(&[], std::slice::from_ref(addr));
            true
        }
    }
}

/// The append-side handle to a membership journal. [`MemberJournal::open`]
/// replays (and repairs) the file; [`MemberJournal::append`] frames and
/// flushes one record per transition, *before* the transition takes
/// effect in memory.
#[derive(Debug)]
pub struct MemberJournal {
    file: File,
    path: PathBuf,
    bytes: u64,
}

fn member_write_gate() -> symbio::Result<()> {
    symbio::faultpoint!("membership_write");
    Ok(())
}

impl MemberJournal {
    /// Open (or create) the journal at `path`: truncate any torn tail,
    /// replay the valid prefix, and position for appends. A fresh file
    /// gets the `Meta` version stamp; a non-empty one must carry a
    /// compatible version.
    pub fn open(path: &Path) -> symbio::Result<(MemberJournal, MemberReplay)> {
        let mut file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(path)?;
        let mut data = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut data)?;
        let valid = valid_prefix(&data);
        let truncated = valid < data.len();
        if truncated {
            file.set_len(valid as u64)?;
        }
        file.seek(SeekFrom::End(0))?;

        let mut replay = MemberReplay {
            membership: None,
            epochs: 0,
            truncated,
        };
        let mut pos = 0usize;
        while pos < valid {
            let end = data[pos..valid]
                .iter()
                .position(|&b| b == b'\n')
                .map_or(valid, |i| pos + i);
            let line = &data[pos..end];
            pos = end + 1;
            if line.is_empty() {
                continue;
            }
            let record = decode_member_frame(line).expect("frame validated by valid_prefix");
            if let MemberRecord::Meta { version } = record {
                if version != MEMBER_JOURNAL_VERSION {
                    return Err(Error::InvalidConfig(format!(
                        "membership journal version {version} (this build replays {MEMBER_JOURNAL_VERSION})"
                    )));
                }
                continue;
            }
            if apply_member(&mut replay.membership, &record) {
                replay.epochs += 1;
            }
        }

        let mut journal = MemberJournal {
            file,
            path: path.to_path_buf(),
            bytes: valid as u64,
        };
        if valid == 0 {
            journal.append(&MemberRecord::Meta {
                version: MEMBER_JOURNAL_VERSION,
            })?;
        }
        Ok((journal, replay))
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Valid bytes on disk (replayed prefix plus appends this run).
    pub fn bytes_written(&self) -> u64 {
        self.bytes
    }

    /// Frame, write and flush one record. Write-ahead: call this before
    /// mutating the in-memory membership, so a crash between the two
    /// replays to the *post*-transition state, never an unjournaled one.
    pub fn append(&mut self, record: &MemberRecord) -> symbio::Result<()> {
        member_write_gate()?;
        let frame = encode_member_frame(record)?;
        self.file.write_all(frame.as_bytes())?;
        self.file.flush()?;
        self.bytes += frame.len() as u64;
        Ok(())
    }
}

/// De-bounces eviction: a backend must fail `threshold` probes within a
/// sliding `window` (seconds) before [`FlapDetector::strike`] votes to
/// evict it. Everything below threshold is a suppressed flap — the
/// caller retries instead of evicting.
#[derive(Debug)]
pub struct FlapDetector {
    threshold: usize,
    window: f64,
    strikes: HashMap<String, Vec<f64>>,
}

impl FlapDetector {
    /// `threshold` failed probes (floored at 1) within `window` seconds
    /// trip eviction.
    pub fn new(threshold: u32, window: f64) -> FlapDetector {
        FlapDetector {
            threshold: threshold.max(1) as usize,
            window: window.max(0.0),
            strikes: HashMap::new(),
        }
    }

    /// Record one failed probe against `addr` at time `now`. Returns
    /// `true` when the backend crossed the threshold inside the window
    /// (evict it now); the addr's strike history resets on a trip.
    pub fn strike(&mut self, addr: &str, now: f64) -> bool {
        let hits = self.strikes.entry(addr.to_string()).or_default();
        hits.retain(|&t| now - t <= self.window);
        hits.push(now);
        if hits.len() >= self.threshold {
            self.strikes.remove(addr);
            true
        } else {
            false
        }
    }

    /// Forget `addr`'s strike history (a probe succeeded, or the
    /// backend left the membership).
    pub fn clear(&mut self, addr: &str) {
        self.strikes.remove(addr);
    }

    /// Strikes currently held against `addr` (test/observability hook).
    pub fn pending(&self, addr: &str) -> usize {
        self.strikes.get(addr).map_or(0, Vec::len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("symbio-members-{tag}-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn frames_round_trip() {
        for record in [
            MemberRecord::Meta {
                version: MEMBER_JOURNAL_VERSION,
            },
            MemberRecord::Seed {
                backends: vec!["127.0.0.1:7001".into(), "127.0.0.1:7002".into()],
            },
            MemberRecord::Join {
                addr: "127.0.0.1:7003".into(),
            },
            MemberRecord::Evict {
                addr: "127.0.0.1:7001".into(),
            },
            MemberRecord::Drain {
                addr: "127.0.0.1:7002".into(),
            },
        ] {
            let frame = encode_member_frame(&record).expect("encode");
            let line = frame.trim_end_matches('\n').as_bytes();
            assert_eq!(decode_member_frame(line), Some(record));
        }
        // A flipped byte fails the checksum, not the parser.
        let frame = encode_member_frame(&MemberRecord::Join { addr: "x:1".into() }).unwrap();
        let mut bytes = frame.trim_end_matches('\n').as_bytes().to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x20;
        assert_eq!(decode_member_frame(&bytes), None);
    }

    #[test]
    fn journal_replays_to_the_same_membership() {
        let path = temp_path("replay");
        let seed = vec!["127.0.0.1:7001".to_string(), "127.0.0.1:7002".to_string()];
        let mut live = Membership::new(seed.iter().cloned());
        {
            let (mut j, replay) = MemberJournal::open(&path).expect("open fresh");
            assert_eq!(replay.membership, None);
            assert!(!replay.truncated);
            j.append(&MemberRecord::Seed {
                backends: seed.clone(),
            })
            .unwrap();
            j.append(&MemberRecord::Join {
                addr: "127.0.0.1:7003".into(),
            })
            .unwrap();
            j.append(&MemberRecord::Evict {
                addr: "127.0.0.1:7001".into(),
            })
            .unwrap();
        }
        live.apply(&["127.0.0.1:7003".to_string()], &[]);
        live.apply(&[], &["127.0.0.1:7001".to_string()]);

        let (_, replay) = MemberJournal::open(&path).expect("reopen");
        let replayed = replay.membership.expect("seeded");
        assert_eq!(replayed, live);
        assert_eq!(replayed.epoch(), live.epoch());
        assert_eq!(replay.epochs, 3);
        assert!(!replay.truncated);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_is_truncated_and_replay_matches_the_prefix() {
        let path = temp_path("torn");
        {
            let (mut j, _) = MemberJournal::open(&path).unwrap();
            j.append(&MemberRecord::Seed {
                backends: vec!["a:1".into(), "b:2".into()],
            })
            .unwrap();
            j.append(&MemberRecord::Join { addr: "c:3".into() })
                .unwrap();
        }
        // Capture the replay of the intact file, then tear the tail:
        // append half a frame, as a crash mid-write would.
        let (_, intact) = MemberJournal::open(&path).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        let torn = encode_member_frame(&MemberRecord::Evict { addr: "a:1".into() }).unwrap();
        raw.extend_from_slice(&torn.as_bytes()[..torn.len() / 2]);
        std::fs::write(&path, &raw).unwrap();

        let (j, replay) = MemberJournal::open(&path).unwrap();
        assert!(replay.truncated);
        assert_eq!(replay.membership, intact.membership);
        assert_eq!(replay.epochs, intact.epochs);
        // The repair is durable: a third open sees a clean file.
        drop(j);
        let (_, again) = MemberJournal::open(&path).unwrap();
        assert!(!again.truncated);
        assert_eq!(again.membership, intact.membership);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flap_detector_needs_threshold_strikes_inside_the_window() {
        let mut flaps = FlapDetector::new(3, 1.0);
        assert!(!flaps.strike("a:1", 0.0));
        assert!(!flaps.strike("a:1", 0.1));
        assert!(flaps.strike("a:1", 0.2), "third strike in window trips");
        // History resets after a trip.
        assert!(!flaps.strike("a:1", 0.3));

        // Strikes spread wider than the window never trip.
        let mut slow = FlapDetector::new(3, 1.0);
        assert!(!slow.strike("b:2", 0.0));
        assert!(!slow.strike("b:2", 2.0));
        assert!(!slow.strike("b:2", 4.0));
        assert_eq!(slow.pending("b:2"), 1);

        // A success clears the slate.
        let mut cleared = FlapDetector::new(2, 10.0);
        assert!(!cleared.strike("c:3", 0.0));
        cleared.clear("c:3");
        assert!(!cleared.strike("c:3", 0.1));
    }
}
