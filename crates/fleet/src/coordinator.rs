//! `fleetd`: the coordinator process.
//!
//! Upstream it speaks the same versioned envelope as `symbiod` (clients
//! reuse [`WireClient`] unchanged) plus the three fleet verbs
//! (`Route`/`Assign`/`FleetMetrics`); downstream it proxies
//! `Ingest`/`IngestBatch`/`Map` to the rendezvous owner of each group
//! over pooled binary connections.
//!
//! Request path for an ingest:
//!
//! 1. **admission** — resolve the tenant from the group-name prefix and
//!    run quota / token-bucket / shed checks ([`crate::tenant`]);
//! 2. **resolution** — look the group up in the compact routing table
//!    ([`crate::routing`]); a group flagged `moved` by the last
//!    rebalance answers `route_moved` exactly once (telling the client
//!    to re-resolve), unflagged groups proxy straight through;
//! 3. **proxy & retry** — exchange with the owning backend. A transport
//!    failure **auto-evicts** the backend (membership change +
//!    rebalance, exactly as an explicit `Assign` remove would) and
//!    retries against the post-rebalance owner, so a killed backend
//!    costs in-flight requests one internal retry, not an error;
//! 4. **backpressure** — degraded/busy replies from backends raise the
//!    deterministic shed pressure; sustained healthy replies lower it.
//!
//! Concurrency: one OS thread per upstream connection, all sharing the
//! coordinator state behind a single mutex. The proxy hop dominates
//! request latency and the fleet front-end serves few, fat connections
//! (loadgen, operators), so a finer lock structure would buy little —
//! the measured `BENCH_fleet.json` throughput is the judge.

use crate::assign::Membership;
use crate::backend::BackendPool;
use crate::routing::{RouteEntry, RoutingTable, DEFAULT_BYTES_PER_GROUP};
use crate::tenant::{tenant_of, Admission, TenantRegistry, TenantSpec};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use symbio::obs::Counters;
use symbio::Error;
use symbio_serve::proto::{
    negotiate, Encoding, FleetSnapshot, FleetView, Request, Response, DEFAULT_BATCH_MAX,
};
use symbio_serve::server::codec::{Chunk, FrameBuffer};

/// Tunables of the coordinator.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Downstream connect/read/write deadline per backend exchange.
    pub timeout: Duration,
    /// Routing-table bytes/group budget (`BENCH_fleet.json` reports the
    /// measured figure against it).
    pub bytes_budget: usize,
    /// Tenant specs known at startup (unknown tenants are admitted
    /// unconstrained).
    pub tenants: Vec<TenantSpec>,
    /// Consecutive backlog signals (degraded/busy backend replies) that
    /// raise shed pressure by one tenant; the same count of consecutive
    /// healthy replies lowers it by one.
    pub shed_trip: u32,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            timeout: Duration::from_secs(5),
            bytes_budget: DEFAULT_BYTES_PER_GROUP,
            tenants: Vec::new(),
            shed_trip: 8,
        }
    }
}

/// Mutable coordinator state (membership, routing, tenancy, pool) —
/// one mutex, see the module docs for why.
struct Inner {
    membership: Membership,
    routing: RoutingTable,
    tenants: TenantRegistry,
    pool: BackendPool,
    /// Consecutive backlog signals from backends.
    backlog_streak: u32,
    /// Consecutive healthy proxied replies while pressure > 0.
    healthy_streak: u32,
}

/// State shared by every connection thread.
struct Shared {
    counters: Arc<Counters>,
    inner: Mutex<Inner>,
    draining: AtomicBool,
    started: Instant,
    shed_trip: u32,
    batch_max: usize,
}

impl Shared {
    fn now(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The fleet coordinator daemon. Construct with [`Fleetd::bind`], then
/// [`Fleetd::run`] blocks until a client sends `Shutdown` (which also
/// drains every backend).
pub struct Fleetd {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Fleetd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleetd").field("addr", &self.addr).finish()
    }
}

impl Fleetd {
    /// Bind `addr` (e.g. `127.0.0.1:0`) fronting `backends`.
    pub fn bind(addr: &str, backends: &[String], cfg: FleetConfig) -> symbio::Result<Fleetd> {
        if cfg.timeout.is_zero() {
            return Err(Error::InvalidConfig("timeout must be nonzero".into()));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            counters: Arc::new(Counters::new()),
            inner: Mutex::new(Inner {
                membership: Membership::new(backends.iter().cloned()),
                routing: RoutingTable::new(cfg.bytes_budget),
                tenants: TenantRegistry::new(cfg.tenants.clone()),
                pool: BackendPool::new(cfg.timeout),
                backlog_streak: 0,
                healthy_streak: 0,
            }),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            shed_trip: cfg.shed_trip.max(1),
            batch_max: DEFAULT_BATCH_MAX,
        });
        Ok(Fleetd {
            listener,
            addr,
            shared,
        })
    }

    /// The address the coordinator actually listens on (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The coordinator's own counter ledger.
    pub fn counters(&self) -> Arc<Counters> {
        Arc::clone(&self.shared.counters)
    }

    /// Serve until a `Shutdown` request: accept upstream connections,
    /// one thread each, then drain the backends and return.
    pub fn run(self) -> symbio::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut handles = Vec::new();
        while !self.shared.draining.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    handles.push(std::thread::spawn(move || serve_conn(stream, &shared)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(Error::Io(e)),
            }
        }
        drop(self.listener);
        for h in handles {
            let _ = h.join();
        }
        Ok(())
    }
}

/// One upstream connection: frame, dispatch, reply, until EOF or
/// shutdown. Mirrors the symbiod session's negotiation rules (the
/// `Welcome` goes out in the encoding the `Hello` arrived in).
fn serve_conn(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut rx = FrameBuffer::new();
    let mut encoding = Encoding::JsonLines;
    let mut buf = [0u8; 16 * 1024];
    let mut out = Vec::new();
    loop {
        // Drain every whole frame already buffered.
        loop {
            match rx.next_request(encoding) {
                Ok(Chunk::Frame(request)) => {
                    out.clear();
                    let (reply, next_encoding, shutdown) = dispatch(request, encoding, shared);
                    if encoding.codec().encode_reply(&reply, &mut out).is_err()
                        || stream.write_all(&out).is_err()
                    {
                        return;
                    }
                    encoding = next_encoding;
                    if shutdown {
                        shared.draining.store(true, Ordering::SeqCst);
                        return;
                    }
                }
                Ok(Chunk::Malformed(e)) => {
                    out.clear();
                    let reply = Response::from_error(&e);
                    if encoding.codec().encode_reply(&reply, &mut out).is_err()
                        || stream.write_all(&out).is_err()
                    {
                        return;
                    }
                }
                Ok(Chunk::Incomplete) => break,
                // Unframeable stream (bad length prefix): close.
                Err(_) => return,
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => rx.extend(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Handle one request. Returns the reply, the encoding for *subsequent*
/// frames, and whether the daemon should drain.
fn dispatch(request: Request, encoding: Encoding, shared: &Shared) -> (Response, Encoding, bool) {
    Counters::add(&shared.counters.serve_requests, 1);
    match request {
        Request::Hello(hello) => {
            let allowed = [Encoding::JsonLines, Encoding::Binary];
            match negotiate(&hello, &allowed, shared.batch_max) {
                Ok((next, welcome)) => (Response::Welcome(welcome), next, false),
                Err(reply) => {
                    Counters::add(&shared.counters.serve_errors, 1);
                    (reply, encoding, false)
                }
            }
        }
        Request::Route { group } => (route(&group, shared), encoding, false),
        Request::Assign { add, remove } => (assign(&add, &remove, shared), encoding, false),
        Request::FleetMetrics => (fleet_metrics(shared), encoding, false),
        Request::Metrics => (
            Response::Metrics(shared.counters.snapshot()),
            encoding,
            false,
        ),
        Request::Ingest(_) | Request::Map { .. } => (proxy(request, shared), encoding, false),
        Request::IngestBatch(batch) => {
            if batch.len() > shared.batch_max {
                Counters::add(&shared.counters.serve_errors, 1);
                return (
                    Response::protocol(
                        "batch_too_large",
                        format!("batch of {} exceeds {}", batch.len(), shared.batch_max),
                    ),
                    encoding,
                    false,
                );
            }
            // Groups in one batch may live on different backends, so the
            // batch fans out item by item; the reply still lines up with
            // the snapshots in order, exactly as symbiod's would.
            Counters::add(&shared.counters.serve_batches, 1);
            let items = batch
                .into_iter()
                .map(|snap| proxy(Request::Ingest(snap), shared))
                .collect();
            (Response::Batch(items), encoding, false)
        }
        Request::Shutdown => (shutdown_fleet(shared), encoding, true),
    }
}

/// Resolve a group's owner, routing it (and interning its tenant) on
/// first sight. Also the explicit `Route` verb's handler.
fn route(group: &str, shared: &Shared) -> Response {
    let mut inner = shared.lock();
    let key = RoutingTable::key_of(group);
    let Some(owner) = inner.membership.owner_index(key) else {
        Counters::add(&shared.counters.serve_errors, 1);
        return Response::protocol("no_backends", "the fleet membership is empty");
    };
    let tenant = inner.tenants.index_of(tenant_of(group));
    let epoch = inner.membership.epoch();
    let backend = inner.membership.backends()[owner].addr.clone();
    // An explicit Route resolution also clears a pending moved flag —
    // the client now holds the fresh owner.
    inner.routing.upsert(
        key,
        RouteEntry {
            owner: owner as u16,
            tenant,
            moved: false,
        },
    );
    Counters::add(&shared.counters.fleet_routes, 1);
    Response::Route {
        group: group.to_string(),
        backend,
        epoch,
    }
}

/// Apply a membership change and rebalance the routing table.
fn assign(add: &[String], remove: &[String], shared: &Shared) -> Response {
    let mut inner = shared.lock();
    let before = inner.membership.clone();
    let changed = inner.membership.apply(add, remove);
    let mut moved = 0;
    if changed {
        for addr in remove {
            inner.pool.forget(addr);
        }
        let after = inner.membership.clone();
        moved = inner.routing.rebalance(&before, &after);
        Counters::add(&shared.counters.fleet_rebalance_moves, moved);
    }
    Response::FleetView(FleetView {
        epoch: inner.membership.epoch(),
        backends: inner.membership.addrs(),
        moved,
    })
}

/// Aggregate the coordinator's counters with every backend's `Metrics`.
fn fleet_metrics(shared: &Shared) -> Response {
    let mut inner = shared.lock();
    let mut aggregate = shared.counters.snapshot();
    let addrs = inner.membership.addrs();
    let mut backends = Vec::with_capacity(addrs.len());
    for addr in &addrs {
        if let Ok(Response::Metrics(c)) = inner.pool.exchange(addr, &Request::Metrics) {
            aggregate.absorb(&c);
        }
        backends.push(inner.pool.stat(addr));
    }
    let per_backend = inner.routing.groups_per_backend(addrs.len());
    for (stat, groups) in backends.iter_mut().zip(per_backend) {
        stat.groups = groups;
    }
    Response::FleetMetrics(FleetSnapshot {
        epoch: inner.membership.epoch(),
        backends,
        aggregate: aggregate.clone(),
    })
}

/// Drain the fleet: forward `Shutdown` to every backend (tolerating the
/// already-dead), then ACK.
fn shutdown_fleet(shared: &Shared) -> Response {
    let mut inner = shared.lock();
    for addr in inner.membership.addrs() {
        let _ = inner.pool.exchange(&addr, &Request::Shutdown);
    }
    Response::Ok
}

/// The group a proxyable request operates on.
fn group_of(request: &Request) -> &str {
    match request {
        Request::Ingest(snap) => &snap.group,
        Request::Map { group } => group,
        _ => unreachable!("only ingest/map are proxied"),
    }
}

/// Admission + resolution + proxy-with-retry for one `Ingest` or `Map`.
fn proxy(request: Request, shared: &Shared) -> Response {
    let mut inner = shared.lock();
    let group = group_of(&request).to_string();
    let key = RoutingTable::key_of(&group);
    let ingest = matches!(request, Request::Ingest(_));

    // 1. Admission (ingest only: reads don't spend quota or tokens).
    let known = inner.routing.get(key);
    let tenant = inner.tenants.index_of(tenant_of(&group));
    if ingest {
        let now = shared.now();
        match inner.tenants.admit(tenant, known.is_none(), now) {
            Admission::Admit => {}
            Admission::QuotaExceeded => {
                Counters::add(&shared.counters.tenant_sheds, 1);
                return Response::Error {
                    kind: "busy".to_string(),
                    code: "tenant_quota".to_string(),
                    message: format!(
                        "tenant {} is over its distinct-group quota",
                        tenant_of(&group)
                    ),
                    retryable: false,
                };
            }
            Admission::RateLimited | Admission::Shed => {
                Counters::add(&shared.counters.tenant_sheds, 1);
                return Response::tenant_shed(tenant_of(&group));
            }
        }
    }

    // 2. Resolution. A group the last rebalance moved answers
    //    `route_moved` exactly once so the client exercises its
    //    re-resolve path; the flag clears and the retry proxies.
    if let Some(entry) = known {
        if entry.moved {
            inner.routing.clear_moved(key);
            let epoch = inner.membership.epoch();
            let owner = inner
                .membership
                .owner_index(key)
                .map(|i| inner.membership.backends()[i].addr.clone())
                .unwrap_or_default();
            return Response::route_moved(&group, &owner, epoch);
        }
    }

    // 3. Proxy, auto-evicting dead backends and retrying against the
    //    post-rebalance owner. Each failure shrinks the membership, so
    //    the loop terminates.
    loop {
        let Some(owner) = inner.membership.owner_index(key) else {
            Counters::add(&shared.counters.serve_errors, 1);
            return Response::protocol("no_backends", "the fleet membership is empty");
        };
        inner.routing.upsert(
            key,
            RouteEntry {
                owner: owner as u16,
                tenant,
                moved: false,
            },
        );
        Counters::add(&shared.counters.fleet_routes, 1);
        let addr = inner.membership.backends()[owner].addr.clone();
        match inner.pool.exchange(&addr, &request) {
            Ok(reply) => {
                note_backpressure(&mut inner, shared, &reply);
                return reply;
            }
            Err(_) => {
                Counters::add(&shared.counters.fleet_backend_errors, 1);
                // Auto-evict: the same membership change an operator's
                // `Assign { remove }` would make, then retry on the new
                // owner.
                let before = inner.membership.clone();
                inner.membership.apply(&[], std::slice::from_ref(&addr));
                inner.pool.forget(&addr);
                let after = inner.membership.clone();
                let moved = inner.routing.rebalance(&before, &after);
                Counters::add(&shared.counters.fleet_rebalance_moves, moved);
                // This request already knows it must re-resolve; don't
                // make it eat its own group's moved flag.
                inner.routing.clear_moved(key);
            }
        }
    }
}

/// Track backend backlog signals and move the deterministic shed
/// pressure accordingly.
fn note_backpressure(inner: &mut Inner, shared: &Shared, reply: &Response) {
    let backlogged = matches!(reply, Response::Degraded { .. })
        || matches!(reply, Response::Error { code, .. } if code == "overloaded");
    if backlogged {
        inner.healthy_streak = 0;
        inner.backlog_streak += 1;
        if inner.backlog_streak >= shared.shed_trip {
            inner.backlog_streak = 0;
            let p = inner.tenants.pressure() + 1;
            inner.tenants.set_pressure(p);
        }
    } else {
        inner.backlog_streak = 0;
        if inner.tenants.pressure() > 0 {
            inner.healthy_streak += 1;
            if inner.healthy_streak >= shared.shed_trip {
                inner.healthy_streak = 0;
                let p = inner.tenants.pressure() - 1;
                inner.tenants.set_pressure(p);
            }
        }
    }
}
