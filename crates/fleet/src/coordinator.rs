//! `fleetd`: the coordinator process.
//!
//! Upstream it speaks the same versioned envelope as `symbiod` (clients
//! reuse [`WireClient`] unchanged) plus the three fleet verbs
//! (`Route`/`Assign`/`FleetMetrics`); downstream it proxies
//! `Ingest`/`IngestBatch`/`Map`/`ExportGroup`/`WhatIf`/`Explain` to the
//! rendezvous owner of each group over pooled binary connections.
//! `Subscribe` is answered with a `backend_verb` error: the decision
//! stream is served by the owning backend, not relayed.
//!
//! Request path for an ingest:
//!
//! 1. **admission** — resolve the tenant from the group-name prefix and
//!    run quota / token-bucket / shed checks ([`crate::tenant`]);
//! 2. **resolution** — look the group up in the compact routing table
//!    ([`crate::routing`]); a group flagged `moved` by the last
//!    rebalance answers `route_moved` exactly once (telling the client
//!    to re-resolve), unflagged groups proxy straight through;
//! 3. **proxy & retry** — exchange with the owning backend. A transport
//!    failure is first a *flap*: the request retries the same owner and
//!    the failure is only a strike in the [`crate::membership`] flap
//!    detector. A backend that fails the detector's threshold within
//!    its window is **evicted** (membership change + rebalance, exactly
//!    as an explicit `Assign` remove would, journaled when a membership
//!    journal is configured) and the request retries against the
//!    post-rebalance owner — so a killed backend costs in-flight
//!    requests a few internal retries, not an error;
//! 4. **backpressure** — degraded/busy replies from backends raise the
//!    deterministic shed pressure; sustained healthy replies lower it.
//!
//! Membership changes are a first-class lifecycle (DESIGN.md §14): a
//! planned drain or join (`Assign`) *warm-hands-off* every moved group —
//! the coordinator pulls the group's epoch-ring state from its old
//! owner (`ExportGroup`) and pushes it to the new owner (`ImportGroup`)
//! under the same lock that flips the route, driven by the
//! [`crate::handoff`] state machine (failure or timeout settles cold:
//! the new owner starts the group from scratch). Evictions fall back
//! cold — the dead owner's state is unreachable. With
//! [`FleetConfig::journal`] set, every transition is CRC-framed to disk
//! before it takes effect and a restarted coordinator replays the file
//! to a byte-identical routing view.
//!
//! Concurrency: one OS thread per upstream connection, all sharing the
//! coordinator state behind a single mutex. The proxy hop dominates
//! request latency and the fleet front-end serves few, fat connections
//! (loadgen, operators), so a finer lock structure would buy little —
//! the measured `BENCH_fleet.json` throughput is the judge.

use crate::assign::Membership;
use crate::backend::BackendPool;
use crate::handoff::{Handoff, HandoffEvent, HandoffOutcome};
use crate::membership::{FlapDetector, MemberJournal, MemberRecord};
use crate::routing::{RouteEntry, RoutingTable, DEFAULT_BYTES_PER_GROUP};
use crate::tenant::{tenant_of, Admission, TenantRegistry, TenantSpec};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use symbio::obs::Counters;
use symbio::Error;
use symbio_serve::proto::{
    negotiate, Encoding, FleetSnapshot, FleetView, Request, Response, DEFAULT_BATCH_MAX,
};
use symbio_serve::server::codec::{Chunk, FrameBuffer};

/// Tunables of the coordinator.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Downstream connect/read/write deadline per backend exchange.
    pub timeout: Duration,
    /// Routing-table bytes/group budget (`BENCH_fleet.json` reports the
    /// measured figure against it).
    pub bytes_budget: usize,
    /// Tenant specs known at startup (unknown tenants are admitted
    /// unconstrained).
    pub tenants: Vec<TenantSpec>,
    /// Consecutive backlog signals (degraded/busy backend replies) that
    /// raise shed pressure by one tenant; the same count of consecutive
    /// healthy replies lowers it by one.
    pub shed_trip: u32,
    /// Membership journal path. `None` keeps the membership volatile;
    /// with a path, every join/evict/drain is CRC-framed to disk before
    /// it takes effect, and [`Fleetd::bind`] replays the file (the
    /// replayed membership wins over the `backends` argument, which
    /// only seeds a fresh journal).
    pub journal: Option<PathBuf>,
    /// Failed probes a backend must accumulate inside
    /// [`FleetConfig::flap_window`] before it is evicted; everything
    /// below is a suppressed flap (retried, counted, not evicted).
    pub flap_threshold: u32,
    /// Sliding window for flap counting.
    pub flap_window: Duration,
    /// Per-group warm-handoff budget: an export/import pair that
    /// overruns it settles cold (the new owner starts from scratch).
    pub handoff_timeout: Duration,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            timeout: Duration::from_secs(5),
            bytes_budget: DEFAULT_BYTES_PER_GROUP,
            tenants: Vec::new(),
            shed_trip: 8,
            journal: None,
            flap_threshold: 3,
            flap_window: Duration::from_secs(10),
            handoff_timeout: Duration::from_secs(2),
        }
    }
}

/// Mutable coordinator state (membership, routing, tenancy, pool) —
/// one mutex, see the module docs for why.
struct Inner {
    membership: Membership,
    routing: RoutingTable,
    tenants: TenantRegistry,
    pool: BackendPool,
    /// Eviction de-bounce: transport failures are strikes here first.
    flaps: FlapDetector,
    /// Durable membership, when configured.
    journal: Option<MemberJournal>,
    /// Wire name of every routed group, keyed by its routing hash. The
    /// routing table itself stores hashes only (that is its budget);
    /// warm handoff needs the names back to address `ExportGroup` at
    /// the old owner. One interned `String` per distinct group.
    names: HashMap<u64, String>,
    /// Consecutive backlog signals from backends.
    backlog_streak: u32,
    /// Consecutive healthy proxied replies while pressure > 0.
    healthy_streak: u32,
}

impl Inner {
    /// Journal one membership transition (write-ahead of the in-memory
    /// change) and count the epoch. An unwritable journal is reported
    /// as a serve error but must not take the data path down.
    fn journal_member(&mut self, shared: &Shared, record: &MemberRecord) {
        Counters::add(&shared.counters.membership_epochs, 1);
        if let Some(journal) = &mut self.journal {
            if journal.append(record).is_err() {
                Counters::add(&shared.counters.serve_errors, 1);
            }
        }
    }

    /// Remember a group's wire name under its routing hash.
    fn intern_name(&mut self, key: u64, group: &str) {
        self.names.entry(key).or_insert_with(|| group.to_string());
    }
}

/// State shared by every connection thread.
struct Shared {
    counters: Arc<Counters>,
    inner: Mutex<Inner>,
    draining: AtomicBool,
    started: Instant,
    shed_trip: u32,
    batch_max: usize,
    /// Per-group warm-handoff budget, seconds.
    handoff_timeout: f64,
}

impl Shared {
    fn now(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn proxy_gate() -> symbio::Result<()> {
    symbio::faultpoint!("fleet_proxy");
    Ok(())
}

fn export_gate() -> symbio::Result<()> {
    symbio::faultpoint!("handoff_export");
    Ok(())
}

fn import_gate() -> symbio::Result<()> {
    symbio::faultpoint!("handoff_import");
    Ok(())
}

/// The fleet coordinator daemon. Construct with [`Fleetd::bind`], then
/// [`Fleetd::run`] blocks until a client sends `Shutdown` (which also
/// drains every backend).
pub struct Fleetd {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl std::fmt::Debug for Fleetd {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Fleetd").field("addr", &self.addr).finish()
    }
}

impl Fleetd {
    /// Bind `addr` (e.g. `127.0.0.1:0`) fronting `backends`. With
    /// [`FleetConfig::journal`] set, a journal that already holds a
    /// membership wins over `backends` (restart = replay); a fresh
    /// journal is seeded from `backends` and records that seed.
    pub fn bind(addr: &str, backends: &[String], cfg: FleetConfig) -> symbio::Result<Fleetd> {
        if cfg.timeout.is_zero() {
            return Err(Error::InvalidConfig("timeout must be nonzero".into()));
        }
        let counters = Arc::new(Counters::new());
        let (journal, membership) = match &cfg.journal {
            Some(path) => {
                let (mut journal, replay) = MemberJournal::open(path)?;
                Counters::add(&counters.membership_epochs, replay.epochs);
                if replay.epochs > 0 {
                    Counters::add(&counters.recovery_replays, 1);
                }
                let membership = match replay.membership {
                    Some(m) => m,
                    None => {
                        let m = Membership::new(backends.iter().cloned());
                        journal.append(&MemberRecord::Seed {
                            backends: m.addrs(),
                        })?;
                        Counters::add(&counters.membership_epochs, 1);
                        m
                    }
                };
                (Some(journal), membership)
            }
            None => (None, Membership::new(backends.iter().cloned())),
        };
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            counters,
            inner: Mutex::new(Inner {
                membership,
                routing: RoutingTable::new(cfg.bytes_budget),
                tenants: TenantRegistry::new(cfg.tenants.clone()),
                pool: BackendPool::new(cfg.timeout),
                flaps: FlapDetector::new(cfg.flap_threshold, cfg.flap_window.as_secs_f64()),
                journal,
                names: HashMap::new(),
                backlog_streak: 0,
                healthy_streak: 0,
            }),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            shed_trip: cfg.shed_trip.max(1),
            batch_max: DEFAULT_BATCH_MAX,
            handoff_timeout: cfg.handoff_timeout.as_secs_f64(),
        });
        Ok(Fleetd {
            listener,
            addr,
            shared,
        })
    }

    /// The address the coordinator actually listens on (resolves `:0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The coordinator's own counter ledger.
    pub fn counters(&self) -> Arc<Counters> {
        Arc::clone(&self.shared.counters)
    }

    /// Serve until a `Shutdown` request: accept upstream connections,
    /// one thread each, then drain the backends and return.
    pub fn run(self) -> symbio::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut handles = Vec::new();
        while !self.shared.draining.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    handles.push(std::thread::spawn(move || serve_conn(stream, &shared)));
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) => return Err(Error::Io(e)),
            }
        }
        drop(self.listener);
        for h in handles {
            let _ = h.join();
        }
        Ok(())
    }
}

/// One upstream connection: frame, dispatch, reply, until EOF or
/// shutdown. Mirrors the symbiod session's negotiation rules (the
/// `Welcome` goes out in the encoding the `Hello` arrived in).
fn serve_conn(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let mut rx = FrameBuffer::new();
    let mut encoding = Encoding::JsonLines;
    let mut buf = [0u8; 16 * 1024];
    let mut out = Vec::new();
    loop {
        // Drain every whole frame already buffered.
        loop {
            match rx.next_request(encoding) {
                Ok(Chunk::Frame(request)) => {
                    out.clear();
                    let (reply, next_encoding, shutdown) = dispatch(request, encoding, shared);
                    if encoding.codec().encode_reply(&reply, &mut out).is_err()
                        || stream.write_all(&out).is_err()
                    {
                        return;
                    }
                    encoding = next_encoding;
                    if shutdown {
                        shared.draining.store(true, Ordering::SeqCst);
                        return;
                    }
                }
                Ok(Chunk::Malformed(e)) => {
                    out.clear();
                    let reply = Response::from_error(&e);
                    if encoding.codec().encode_reply(&reply, &mut out).is_err()
                        || stream.write_all(&out).is_err()
                    {
                        return;
                    }
                }
                Ok(Chunk::Incomplete) => break,
                // Unframeable stream (bad length prefix): close.
                Err(_) => return,
            }
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => rx.extend(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Handle one request. Returns the reply, the encoding for *subsequent*
/// frames, and whether the daemon should drain.
fn dispatch(request: Request, encoding: Encoding, shared: &Shared) -> (Response, Encoding, bool) {
    Counters::add(&shared.counters.serve_requests, 1);
    match request {
        Request::Hello(hello) => {
            let allowed = [Encoding::JsonLines, Encoding::Binary];
            match negotiate(&hello, &allowed, shared.batch_max) {
                Ok((next, welcome)) => (Response::Welcome(welcome), next, false),
                Err(reply) => {
                    Counters::add(&shared.counters.serve_errors, 1);
                    (reply, encoding, false)
                }
            }
        }
        Request::Route { group } => (route(&group, shared), encoding, false),
        Request::Assign { add, remove } => (assign(&add, &remove, shared), encoding, false),
        Request::FleetMetrics => (fleet_metrics(shared), encoding, false),
        Request::Metrics => (
            Response::Metrics(shared.counters.snapshot()),
            encoding,
            false,
        ),
        Request::Ingest(_)
        | Request::Map { .. }
        | Request::ExportGroup { .. }
        | Request::WhatIf(_)
        | Request::Explain { .. } => (proxy(request, shared), encoding, false),
        Request::Subscribe => {
            // The decision stream is per-backend: events originate on the
            // shard that made the decision, and the coordinator keeps no
            // long-lived upstream push channel. Resolve the group's owner
            // (`Route`) and subscribe there directly.
            Counters::add(&shared.counters.serve_errors, 1);
            (
                Response::protocol(
                    "backend_verb",
                    "Subscribe is a backend verb; resolve the owner with Route and \
                     subscribe to that symbiod directly",
                ),
                encoding,
                false,
            )
        }
        Request::ImportGroup(_) => {
            // Imports are the coordinator's own handoff mechanism; a
            // client must not inject group state through the front door.
            Counters::add(&shared.counters.serve_errors, 1);
            (
                Response::protocol(
                    "backend_verb",
                    "ImportGroup is a backend verb; the coordinator drives imports itself \
                     during warm handoff",
                ),
                encoding,
                false,
            )
        }
        Request::IngestBatch(batch) => {
            if batch.len() > shared.batch_max {
                Counters::add(&shared.counters.serve_errors, 1);
                return (
                    Response::protocol(
                        "batch_too_large",
                        format!("batch of {} exceeds {}", batch.len(), shared.batch_max),
                    ),
                    encoding,
                    false,
                );
            }
            // Groups in one batch may live on different backends, so the
            // batch fans out item by item; the reply still lines up with
            // the snapshots in order, exactly as symbiod's would.
            Counters::add(&shared.counters.serve_batches, 1);
            let items = batch
                .into_iter()
                .map(|snap| proxy(Request::Ingest(snap), shared))
                .collect();
            (Response::Batch(items), encoding, false)
        }
        Request::Shutdown => (shutdown_fleet(shared), encoding, true),
    }
}

/// Resolve a group's owner, routing it (and interning its tenant) on
/// first sight. Also the explicit `Route` verb's handler.
fn route(group: &str, shared: &Shared) -> Response {
    let mut inner = shared.lock();
    let key = RoutingTable::key_of(group);
    let Some(owner) = inner.membership.owner_index(key) else {
        Counters::add(&shared.counters.serve_errors, 1);
        return Response::protocol("no_backends", "the fleet membership is empty");
    };
    let tenant = inner.tenants.index_of(tenant_of(group));
    let epoch = inner.membership.epoch();
    let backend = inner.membership.backends()[owner].addr.clone();
    inner.intern_name(key, group);
    // An explicit Route resolution also clears a pending moved flag —
    // the client now holds the fresh owner.
    inner.routing.upsert(
        key,
        RouteEntry {
            owner: owner as u16,
            tenant,
            moved: false,
        },
    );
    Counters::add(&shared.counters.fleet_routes, 1);
    Response::Route {
        group: group.to_string(),
        backend,
        epoch,
    }
}

/// Apply a membership change (the `Assign` verb doubles as the Join
/// handshake for a recovered backend), journal it, rebalance the
/// routing table, and warm-hand-off every moved group whose old owner
/// is still reachable — all before the lock drops, so no request ever
/// observes a half-moved fleet.
fn assign(add: &[String], remove: &[String], shared: &Shared) -> Response {
    let mut inner = shared.lock();
    let before = inner.membership.clone();
    let changed = inner.membership.apply(add, remove);
    let mut moved = 0;
    if changed {
        let after = inner.membership.clone();
        // Journal the *effective* diff (apply() deduplicates), one
        // record per transition, before acting on it.
        for addr in after.addrs() {
            if !before.addrs().contains(&addr) {
                inner.journal_member(shared, &MemberRecord::Join { addr });
            }
        }
        let drained: Vec<String> = before
            .addrs()
            .into_iter()
            .filter(|a| !after.addrs().contains(a))
            .collect();
        for addr in &drained {
            inner.journal_member(shared, &MemberRecord::Drain { addr: addr.clone() });
        }
        moved = inner.routing.rebalance(&before, &after);
        Counters::add(&shared.counters.fleet_rebalance_moves, moved);
        // Warm handoff needs the drained backends' connections — a
        // planned drain leaves them reachable — so the pool only
        // forgets them afterwards.
        warm_handoff(&mut inner, shared, &before, &after);
        for addr in &drained {
            inner.pool.forget(addr);
            inner.flaps.clear(addr);
        }
    }
    Response::FleetView(FleetView {
        epoch: inner.membership.epoch(),
        backends: inner.membership.addrs(),
        moved,
    })
}

/// Address of `key`'s owner under `membership`, if any.
fn owner_addr(membership: &Membership, key: u64) -> Option<String> {
    membership
        .owner_index(key)
        .map(|i| membership.backends()[i].addr.clone())
}

/// Orchestrate warm handoffs for every routed group whose owner changed
/// between `before` and `after`: export from the old owner, import into
/// the new one, one [`Handoff`] machine per group. Failure or timeout
/// settles cold — counted, never fatal.
fn warm_handoff(inner: &mut Inner, shared: &Shared, before: &Membership, after: &Membership) {
    let moved: Vec<(String, String, String)> = inner
        .names
        .iter()
        .filter_map(|(&key, name)| {
            let old = owner_addr(before, key)?;
            let new = owner_addr(after, key)?;
            (old != new).then(|| (name.clone(), old, new))
        })
        .collect();
    for (group, old, new) in moved {
        match run_handoff(inner, shared, &group, &old, &new) {
            Some(HandoffOutcome::Warm) => Counters::add(&shared.counters.fleet_warm_handoffs, 1),
            Some(HandoffOutcome::Cold) => Counters::add(&shared.counters.fleet_cold_fallbacks, 1),
            // The old owner held no state for the group (routed but
            // never ingested): nothing to carry, nothing lost.
            None => {}
        }
    }
}

/// One group's export → import round trip, driven through the handoff
/// state machine so a late or failed leg settles cold instead of
/// wedging.
fn run_handoff(
    inner: &mut Inner,
    shared: &Shared,
    group: &str,
    old: &str,
    new: &str,
) -> Option<HandoffOutcome> {
    let mut machine = Handoff::new(shared.handoff_timeout);
    machine.step(HandoffEvent::Begin, shared.now());
    let exported = export_gate().and_then(|()| {
        inner.pool.exchange(
            old,
            &Request::ExportGroup {
                group: group.to_string(),
            },
        )
    });
    let record = match exported {
        Ok(Response::GroupState { record, .. }) => {
            if let Some(outcome) = machine.step(HandoffEvent::Exported, shared.now()) {
                // The export overran the budget: already settled cold.
                return Some(outcome);
            }
            record?
        }
        _ => return machine.step(HandoffEvent::ExportFailed, shared.now()),
    };
    let imported =
        import_gate().and_then(|()| inner.pool.exchange(new, &Request::ImportGroup(record)));
    match imported {
        Ok(Response::Ok) => machine.step(HandoffEvent::Imported, shared.now()),
        _ => machine.step(HandoffEvent::ImportFailed, shared.now()),
    }
}

/// Aggregate the coordinator's counters with every backend's `Metrics`.
fn fleet_metrics(shared: &Shared) -> Response {
    let mut inner = shared.lock();
    let mut aggregate = shared.counters.snapshot();
    let addrs = inner.membership.addrs();
    let mut backends = Vec::with_capacity(addrs.len());
    for addr in &addrs {
        if let Ok(Response::Metrics(c)) = inner.pool.exchange(addr, &Request::Metrics) {
            aggregate.absorb(&c);
        }
        backends.push(inner.pool.stat(addr));
    }
    let per_backend = inner.routing.groups_per_backend(addrs.len());
    for (stat, groups) in backends.iter_mut().zip(per_backend) {
        stat.groups = groups;
    }
    Response::FleetMetrics(FleetSnapshot {
        epoch: inner.membership.epoch(),
        backends,
        aggregate: aggregate.clone(),
    })
}

/// Drain the fleet: forward `Shutdown` to every backend (tolerating the
/// already-dead), then ACK.
fn shutdown_fleet(shared: &Shared) -> Response {
    let mut inner = shared.lock();
    for addr in inner.membership.addrs() {
        let _ = inner.pool.exchange(&addr, &Request::Shutdown);
    }
    Response::Ok
}

/// The group a proxyable request operates on.
fn group_of(request: &Request) -> &str {
    match request {
        Request::Ingest(snap) => &snap.group,
        Request::Map { group } => group,
        Request::ExportGroup { group } => group,
        Request::WhatIf(snap) => &snap.group,
        Request::Explain { group } => group,
        _ => unreachable!("only ingest/map/export/what-if/explain are proxied"),
    }
}

/// Admission + resolution + proxy-with-retry for one `Ingest` or `Map`.
fn proxy(request: Request, shared: &Shared) -> Response {
    let mut inner = shared.lock();
    let group = group_of(&request).to_string();
    let key = RoutingTable::key_of(&group);
    let ingest = matches!(request, Request::Ingest(_));

    // 1. Admission (ingest only: reads don't spend quota or tokens).
    let known = inner.routing.get(key);
    let tenant = inner.tenants.index_of(tenant_of(&group));
    if ingest {
        let now = shared.now();
        match inner.tenants.admit(tenant, known.is_none(), now) {
            Admission::Admit => {}
            Admission::QuotaExceeded => {
                Counters::add(&shared.counters.tenant_sheds, 1);
                return Response::Error {
                    kind: "busy".to_string(),
                    code: "tenant_quota".to_string(),
                    message: format!(
                        "tenant {} is over its distinct-group quota",
                        tenant_of(&group)
                    ),
                    retryable: false,
                };
            }
            Admission::RateLimited | Admission::Shed => {
                Counters::add(&shared.counters.tenant_sheds, 1);
                return Response::tenant_shed(tenant_of(&group));
            }
        }
    }

    // 2. Resolution. A group the last rebalance moved answers
    //    `route_moved` exactly once so the client exercises its
    //    re-resolve path; the flag clears and the retry proxies.
    if let Some(entry) = known {
        if entry.moved {
            inner.routing.clear_moved(key);
            let epoch = inner.membership.epoch();
            let owner = inner
                .membership
                .owner_index(key)
                .map(|i| inner.membership.backends()[i].addr.clone())
                .unwrap_or_default();
            return Response::route_moved(&group, &owner, epoch);
        }
    }

    // 3. Proxy, flap-guarding eviction and retrying. The loop
    //    terminates: every failed exchange is a strike, a backend
    //    absorbs at most `flap_threshold` strikes before it is evicted
    //    (shrinking the membership), and the last backend's trip
    //    returns instead of evicting.
    loop {
        let Some(owner) = inner.membership.owner_index(key) else {
            Counters::add(&shared.counters.serve_errors, 1);
            return Response::protocol("no_backends", "the fleet membership is empty");
        };
        inner.intern_name(key, &group);
        inner.routing.upsert(
            key,
            RouteEntry {
                owner: owner as u16,
                tenant,
                moved: false,
            },
        );
        Counters::add(&shared.counters.fleet_routes, 1);
        let addr = inner.membership.backends()[owner].addr.clone();
        let attempt = proxy_gate().and_then(|()| inner.pool.exchange(&addr, &request));
        match attempt {
            Ok(reply) => {
                inner.flaps.clear(&addr);
                note_backpressure(&mut inner, shared, &reply);
                return reply;
            }
            Err(_) => {
                Counters::add(&shared.counters.fleet_backend_errors, 1);
                // A broken stream can't be trusted for framing; redial
                // on the retry either way.
                inner.pool.forget(&addr);
                if !inner.flaps.strike(&addr, shared.now()) {
                    // A flap until proven dead: retry the same owner
                    // rather than evicting on a single failed probe.
                    Counters::add(&shared.counters.fleet_flaps_suppressed, 1);
                    continue;
                }
                if inner.membership.len() <= 1 {
                    // Evicting the last backend would leave nothing to
                    // serve from; surface a retryable fault instead.
                    Counters::add(&shared.counters.serve_errors, 1);
                    return Response::Error {
                        kind: "busy".to_string(),
                        code: "backend_unavailable".to_string(),
                        message: format!(
                            "backend {addr} is unreachable and is the last fleet member"
                        ),
                        retryable: true,
                    };
                }
                // Proven dead: the same membership change an operator's
                // `Assign { remove }` would make — journaled as an
                // eviction — then retry on the new owner. The dead
                // owner's state is unreachable, so every relocated
                // group restarts cold.
                evict_backend(&mut inner, shared, &addr);
                // This request already knows it must re-resolve; don't
                // make it eat its own group's moved flag.
                inner.routing.clear_moved(key);
            }
        }
    }
}

/// Evict a proven-dead backend: journal, shrink the membership,
/// rebalance, and count every relocated group as a cold fallback.
fn evict_backend(inner: &mut Inner, shared: &Shared, addr: &str) {
    let before = inner.membership.clone();
    inner.journal_member(
        shared,
        &MemberRecord::Evict {
            addr: addr.to_string(),
        },
    );
    let gone = [addr.to_string()];
    inner.membership.apply(&[], &gone);
    inner.pool.forget(addr);
    inner.flaps.clear(addr);
    let after = inner.membership.clone();
    let moved = inner.routing.rebalance(&before, &after);
    Counters::add(&shared.counters.fleet_rebalance_moves, moved);
    Counters::add(&shared.counters.fleet_cold_fallbacks, moved);
}

/// Track backend backlog signals and move the deterministic shed
/// pressure accordingly.
fn note_backpressure(inner: &mut Inner, shared: &Shared, reply: &Response) {
    let backlogged = matches!(reply, Response::Degraded { .. })
        || matches!(reply, Response::Error { code, .. } if code == "overloaded");
    if backlogged {
        inner.healthy_streak = 0;
        inner.backlog_streak += 1;
        if inner.backlog_streak >= shared.shed_trip {
            inner.backlog_streak = 0;
            let p = inner.tenants.pressure() + 1;
            inner.tenants.set_pressure(p);
        }
    } else {
        inner.backlog_streak = 0;
        if inner.tenants.pressure() > 0 {
            inner.healthy_streak += 1;
            if inner.healthy_streak >= shared.shed_trip {
                inner.healthy_streak = 0;
                let p = inner.tenants.pressure() - 1;
                inner.tenants.set_pressure(p);
            }
        }
    }
}
