//! Deterministic rendezvous (HRW) assignment of process groups to
//! backends.
//!
//! Every `(backend, group)` pair is scored with
//! `mix64(backend_seed ^ group_hash)` — both halves stable FNV-1a
//! digests — and the group belongs to the argmax. Two properties fall
//! out of the construction, and both are pinned by proptest
//! (`tests/assign_props.rs`):
//!
//! * **replica determinism** — the assignment is a pure function of the
//!   membership set and the group name, so any coordinator replica (or
//!   a restarted one) computes identical routes with no shared state;
//! * **minimal disruption** — removing one of N backends relocates only
//!   the groups it owned (~1/N of them, ≤ ⌈groups/N⌉ + slack), and a
//!   group whose owner survived *never* moves, because the surviving
//!   backends' scores for it are unchanged.
//!
//! Ties (two backends scoring equal for one group) break toward the
//! lexically smaller address so every replica breaks them identically.

use symbio::hash::{fnv1a_64, mix64};

/// One backend in the membership view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backend {
    /// The backend's dial address (`host:port`), also its identity.
    pub addr: String,
    /// `fnv1a_64(addr)` — precomputed half of the rendezvous score.
    seed: u64,
}

impl Backend {
    /// A backend keyed (and seeded) by its address.
    pub fn new(addr: impl Into<String>) -> Backend {
        let addr = addr.into();
        let seed = fnv1a_64(addr.as_bytes());
        Backend { addr, seed }
    }

    /// This backend's rendezvous score for a group hash.
    pub fn score(&self, group_hash: u64) -> u64 {
        mix64(self.seed ^ group_hash)
    }
}

/// A versioned membership set: the backends eligible to own groups,
/// sorted by address (the deterministic tie-break order), plus an epoch
/// bumped on every accepted change so stale routes are recognizable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Membership {
    epoch: u64,
    backends: Vec<Backend>,
}

impl Membership {
    /// A membership over `addrs` (deduplicated, sorted) at epoch 1 —
    /// epoch 0 is reserved for "empty, never configured".
    pub fn new<I, S>(addrs: I) -> Membership
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut m = Membership {
            epoch: 0,
            backends: Vec::new(),
        };
        let mut changed = false;
        for a in addrs {
            changed |= m.insert(a.into());
        }
        if changed {
            m.epoch = 1;
        }
        m
    }

    fn insert(&mut self, addr: String) -> bool {
        match self.backends.binary_search_by(|b| b.addr.cmp(&addr)) {
            Ok(_) => false,
            Err(i) => {
                self.backends.insert(i, Backend::new(addr));
                true
            }
        }
    }

    /// The membership epoch (bumped on every accepted change).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of backends in the view.
    pub fn len(&self) -> usize {
        self.backends.len()
    }

    /// Whether the view holds no backends.
    pub fn is_empty(&self) -> bool {
        self.backends.is_empty()
    }

    /// The backends, sorted by address.
    pub fn backends(&self) -> &[Backend] {
        &self.backends
    }

    /// Backend addresses, sorted.
    pub fn addrs(&self) -> Vec<String> {
        self.backends.iter().map(|b| b.addr.clone()).collect()
    }

    /// Apply a membership change: add `add`, remove `remove` (adds win
    /// when both name the same address). Returns whether anything
    /// actually changed; the epoch bumps only then.
    pub fn apply(&mut self, add: &[String], remove: &[String]) -> bool {
        let mut changed = false;
        for a in remove {
            if let Ok(i) = self.backends.binary_search_by(|b| b.addr.cmp(a)) {
                self.backends.remove(i);
                changed = true;
            }
        }
        for a in add {
            changed |= self.insert(a.clone());
        }
        if changed {
            self.epoch += 1;
        }
        changed
    }

    /// Index of the backend owning `group_hash` (rendezvous argmax;
    /// ties break toward the lexically smaller address because the
    /// backends are address-sorted and only a strictly greater score
    /// displaces the leader). `None` on an empty membership.
    pub fn owner_index(&self, group_hash: u64) -> Option<usize> {
        let mut best: Option<(usize, u64)> = None;
        for (i, b) in self.backends.iter().enumerate() {
            let score = b.score(group_hash);
            if best.is_none_or(|(_, s)| score > s) {
                best = Some((i, score));
            }
        }
        best.map(|(i, _)| i)
    }

    /// Address of the backend owning `group` (hashes the name, then
    /// [`Membership::owner_index`]).
    pub fn owner_of(&self, group: &str) -> Option<&str> {
        self.owner_index(fnv1a_64(group.as_bytes()))
            .map(|i| self.backends[i].addr.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_is_a_pure_function_of_the_membership_set() {
        let a = Membership::new(["b:1", "a:1", "c:1"]);
        let b = Membership::new(["c:1", "a:1", "b:1", "a:1"]);
        assert_eq!(a.addrs(), b.addrs());
        for i in 0..64 {
            let g = format!("tenant-{}/load-{i}", i % 3);
            assert_eq!(a.owner_of(&g), b.owner_of(&g));
        }
    }

    #[test]
    fn groups_spread_across_backends() {
        let m = Membership::new(["a:1", "b:1", "c:1", "d:1"]);
        let mut counts = [0usize; 4];
        for i in 0..400 {
            let g = format!("load-{i}");
            let idx = m.owner_index(fnv1a_64(g.as_bytes())).unwrap();
            counts[idx] += 1;
        }
        // Rendezvous over 400 groups and 4 backends: every backend owns
        // a substantial share (a collapsed distribution would mean the
        // mixer is broken).
        for c in counts {
            assert!(c > 40, "skewed rendezvous distribution: {counts:?}");
        }
    }

    #[test]
    fn surviving_owners_keep_their_groups_on_removal() {
        let full = Membership::new(["a:1", "b:1", "c:1"]);
        let mut reduced = full.clone();
        assert!(reduced.apply(&[], &["b:1".to_string()]));
        assert_eq!(reduced.epoch(), 2);
        let mut moved = 0usize;
        for i in 0..300 {
            let g = format!("load-{i}");
            let before = full.owner_of(&g).unwrap();
            let after = reduced.owner_of(&g).unwrap();
            if before == "b:1" {
                moved += 1;
                assert_ne!(after, "b:1");
            } else {
                assert_eq!(before, after, "group {g} moved off a surviving owner");
            }
        }
        assert!(moved > 0, "the removed backend owned nothing out of 300");
    }

    #[test]
    fn epoch_tracks_only_real_changes() {
        let mut m = Membership::new(["a:1"]);
        assert_eq!(m.epoch(), 1);
        assert!(!m.apply(&["a:1".to_string()], &[]));
        assert_eq!(m.epoch(), 1);
        assert!(m.apply(&["b:1".to_string()], &["missing:0".to_string()]));
        assert_eq!(m.epoch(), 2);
        assert!(Membership::new(Vec::<String>::new()).is_empty());
        assert_eq!(Membership::default().epoch(), 0);
        assert_eq!(Membership::default().owner_of("g"), None);
    }
}
