//! The coordinator's downstream side: one lazily-connected
//! [`WireClient`] per backend, negotiated up to the binary envelope,
//! with per-backend health and traffic accounting.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;
use symbio::Error;
use symbio_serve::proto::{BackendStat, Encoding, Request, Response};
use symbio_serve::WireClient;

/// One backend's live connection state and counters.
#[derive(Debug, Default)]
struct Slot {
    conn: Option<WireClient>,
    healthy: bool,
    proxied: u64,
    errors: u64,
}

/// A pool of downstream connections keyed by backend address.
#[derive(Debug)]
pub struct BackendPool {
    slots: HashMap<String, Slot>,
    timeout: Duration,
}

impl BackendPool {
    /// An empty pool dialing with `timeout` as the connect/read/write
    /// deadline.
    pub fn new(timeout: Duration) -> BackendPool {
        BackendPool {
            slots: HashMap::new(),
            timeout,
        }
    }

    fn dial(addr: &str, timeout: Duration) -> symbio::Result<WireClient> {
        let sock: SocketAddr = addr
            .parse()
            .map_err(|e| Error::InvalidConfig(format!("backend addr {addr:?}: {e}")))?;
        let mut conn = WireClient::connect(sock, timeout)?;
        // The proxy path wants the compact encoding; a backend that
        // refuses binary still works on json-lines.
        let _ = conn.hello(Encoding::Binary);
        Ok(conn)
    }

    /// One request/reply round trip against `addr`, dialing (or
    /// redialing) as needed. A transport failure tears the cached
    /// connection down and marks the backend unhealthy; the caller
    /// decides whether to evict it from the membership.
    pub fn exchange(&mut self, addr: &str, request: &Request) -> symbio::Result<Response> {
        let slot = self.slots.entry(addr.to_string()).or_default();
        if slot.conn.is_none() {
            match Self::dial(addr, self.timeout) {
                Ok(c) => {
                    slot.conn = Some(c);
                    slot.healthy = true;
                }
                Err(e) => {
                    slot.healthy = false;
                    slot.errors += 1;
                    return Err(e);
                }
            }
        }
        let conn = slot.conn.as_mut().expect("dialed above");
        match conn.exchange(request) {
            Ok(reply) => {
                slot.proxied += 1;
                Ok(reply)
            }
            Err(e) => {
                // Half a round trip may have landed; the stream can't be
                // trusted for framing any more.
                slot.conn = None;
                slot.healthy = false;
                slot.errors += 1;
                Err(e)
            }
        }
    }

    /// Drop any cached connection to `addr` (the backend left the
    /// membership).
    pub fn forget(&mut self, addr: &str) {
        self.slots.remove(addr);
    }

    /// Whether the pool currently holds a working connection to `addr`.
    pub fn healthy(&self, addr: &str) -> bool {
        self.slots
            .get(addr)
            .is_some_and(|s| s.healthy && s.conn.is_some())
    }

    /// The pool's view of `addr` as a wire-ready [`BackendStat`]
    /// (`groups` is the routing table's to fill in).
    pub fn stat(&self, addr: &str) -> BackendStat {
        let slot = self.slots.get(addr);
        BackendStat {
            addr: addr.to_string(),
            healthy: slot.is_some_and(|s| s.healthy && s.conn.is_some()),
            groups: 0,
            proxied: slot.map_or(0, |s| s.proxied),
            errors: slot.map_or(0, |s| s.errors),
        }
    }
}
