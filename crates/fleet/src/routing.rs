//! Compact per-group routing state with an explicit bytes/group budget.
//!
//! The coordinator tracks, for every process group it has routed, which
//! backend owns it, which tenant it belongs to, and whether its owner
//! just changed in a rebalance. At fleet scale ("millions of process
//! groups") a `HashMap<String, …>` would spend hundreds of bytes per
//! group on the names alone, so the table stores **only hashes**: an
//! open-addressing array of `u64` group keys (FNV-1a of the name, 0
//! reserved as the empty sentinel) and a parallel array of packed `u64`
//! values (`owner:u16 | tenant:u16 | flags:u16 | spare:u16`). That is 16
//! bytes per slot; at the table's minimum fill (half of the 7/8 grow
//! threshold after a doubling) the worst case is ~37 bytes per live
//! group — comfortably inside the default 128 B budget, and
//! [`RoutingTable::bytes_per_group`] reports the measured figure so
//! `BENCH_fleet.json` records fact, not arithmetic.
//!
//! Keying by hash means two groups colliding on the full 64-bit FNV-1a
//! digest would share a routing entry; with the fleet's own placement
//! hash that needs ~2³² live groups for a 50% chance (birthday bound),
//! and a collision only merges two groups' *routing*, never their engine
//! state.

use crate::assign::Membership;
use symbio::hash::fnv1a_64;

/// Value-word packing (little-endian fields of the packed `u64`).
const OWNER_SHIFT: u32 = 0;
const TENANT_SHIFT: u32 = 16;
const FLAGS_SHIFT: u32 = 32;
/// Flag bit: the group's owner changed in the last rebalance and no
/// request has been told yet (`route_moved` fires once, then clears).
const FLAG_MOVED: u64 = 1;

/// One group's routing entry, unpacked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteEntry {
    /// Index of the owning backend in the membership's sorted order.
    pub owner: u16,
    /// Index of the group's tenant in the tenant registry.
    pub tenant: u16,
    /// Whether the owner changed in the last rebalance and the next
    /// request should be told to re-resolve.
    pub moved: bool,
}

fn pack(e: RouteEntry) -> u64 {
    (u64::from(e.owner) << OWNER_SHIFT)
        | (u64::from(e.tenant) << TENANT_SHIFT)
        | (u64::from(e.moved) * (FLAG_MOVED << FLAGS_SHIFT))
}

fn unpack(v: u64) -> RouteEntry {
    RouteEntry {
        owner: (v >> OWNER_SHIFT) as u16,
        tenant: (v >> TENANT_SHIFT) as u16,
        moved: (v >> FLAGS_SHIFT) & FLAG_MOVED != 0,
    }
}

/// Open-addressing hash table from group hash to packed routing state.
#[derive(Debug, Clone)]
pub struct RoutingTable {
    /// Group keys; 0 = empty slot (a real key hashing to 0 is remapped
    /// to 1 — see [`RoutingTable::key_of`]).
    keys: Vec<u64>,
    /// Packed values, parallel to `keys`.
    vals: Vec<u64>,
    len: usize,
    /// Hard budget on `heap_bytes() / len` — inserts that would blow it
    /// still succeed (shedding routing state would lose groups), but
    /// [`RoutingTable::over_budget`] flips so the operator finds out.
    budget: usize,
}

/// Default bytes/group budget (the ISSUE's acceptance ceiling).
pub const DEFAULT_BYTES_PER_GROUP: usize = 128;

const MIN_CAP: usize = 64;

impl Default for RoutingTable {
    fn default() -> Self {
        RoutingTable::new(DEFAULT_BYTES_PER_GROUP)
    }
}

impl RoutingTable {
    /// An empty table enforcing `budget` bytes/group.
    pub fn new(budget: usize) -> RoutingTable {
        RoutingTable {
            keys: vec![0; MIN_CAP],
            vals: vec![0; MIN_CAP],
            len: 0,
            budget,
        }
    }

    /// The table key for a group name (FNV-1a, 0 remapped off the empty
    /// sentinel).
    pub fn key_of(group: &str) -> u64 {
        let h = fnv1a_64(group.as_bytes());
        if h == 0 {
            1
        } else {
            h
        }
    }

    /// Routed groups.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no group has been routed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Heap bytes the table holds (both arrays; the struct header is
    /// shared overhead, not per-group).
    pub fn heap_bytes(&self) -> usize {
        self.keys.capacity() * std::mem::size_of::<u64>()
            + self.vals.capacity() * std::mem::size_of::<u64>()
    }

    /// Measured bytes per routed group.
    pub fn bytes_per_group(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.heap_bytes() as f64 / self.len as f64
        }
    }

    /// Whether the measured footprint exceeds the configured budget.
    pub fn over_budget(&self) -> bool {
        self.len > 0 && self.bytes_per_group() > self.budget as f64
    }

    fn slot_of(&self, key: u64) -> usize {
        // Capacity is a power of two; the key is already a mixed FNV
        // digest, so masking is an adequate reduction.
        let mask = self.keys.len() - 1;
        let mut i = (key as usize) & mask;
        loop {
            if self.keys[i] == 0 || self.keys[i] == key {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![0; new_cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![0; new_cap]);
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != 0 {
                let i = self.slot_of(k);
                self.keys[i] = k;
                self.vals[i] = v;
            }
        }
    }

    /// Insert or update the entry under `key`. Returns the previous
    /// entry when the group was already routed.
    pub fn upsert(&mut self, key: u64, entry: RouteEntry) -> Option<RouteEntry> {
        debug_assert_ne!(key, 0, "0 is the empty sentinel; use key_of()");
        // Grow at 7/8 load: probe chains stay short and the worst-case
        // fill after a doubling (7/16) still meets the bytes budget.
        if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let i = self.slot_of(key);
        let prev = (self.keys[i] != 0).then(|| unpack(self.vals[i]));
        if prev.is_none() {
            self.keys[i] = key;
            self.len += 1;
        }
        self.vals[i] = pack(entry);
        prev
    }

    /// The entry under `key`, if the group has been routed.
    pub fn get(&self, key: u64) -> Option<RouteEntry> {
        let i = self.slot_of(key);
        (self.keys[i] != 0).then(|| unpack(self.vals[i]))
    }

    /// Clear the moved flag under `key` (after the one `route_moved`
    /// reply fired). No-op for unrouted groups.
    pub fn clear_moved(&mut self, key: u64) {
        let i = self.slot_of(key);
        if self.keys[i] != 0 {
            let mut e = unpack(self.vals[i]);
            e.moved = false;
            self.vals[i] = pack(e);
        }
    }

    /// Recompute every routed group's owner under `membership`,
    /// flagging the groups whose owner changed. Returns how many moved.
    ///
    /// The assignment is a pure function of `(key, membership)`, so this
    /// is exactly the disruption the rendezvous hash promises: only
    /// groups whose owner left the membership (or lost an argmax to a
    /// new arrival) are touched.
    pub fn rebalance(&mut self, before: &Membership, after: &Membership) -> u64 {
        let mut moved = 0u64;
        for i in 0..self.keys.len() {
            let key = self.keys[i];
            if key == 0 {
                continue;
            }
            let old = before.owner_index(key);
            let new = after.owner_index(key);
            if let Some(new) = new {
                let mut e = unpack(self.vals[i]);
                // Owners are compared by *address*, not index: a removal
                // shifts the indices of every later backend without
                // moving the groups they own.
                let old_addr = old.map(|o| before.backends()[o].addr.as_str());
                let new_addr = after.backends()[new].addr.as_str();
                if old_addr != Some(new_addr) {
                    moved += 1;
                    e.moved = true;
                }
                e.owner = new as u16;
                self.vals[i] = pack(e);
            }
        }
        moved
    }

    /// Per-backend routed-group counts under a membership of `n`
    /// backends (indexes past `n` are dropped — they can only exist
    /// transiently between a membership change and its rebalance).
    pub fn groups_per_backend(&self, n: usize) -> Vec<u64> {
        let mut counts = vec![0u64; n];
        for i in 0..self.keys.len() {
            if self.keys[i] != 0 {
                let owner = unpack(self.vals[i]).owner as usize;
                if owner < n {
                    counts[owner] += 1;
                }
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(owner: u16) -> RouteEntry {
        RouteEntry {
            owner,
            tenant: 0,
            moved: false,
        }
    }

    #[test]
    fn upsert_get_and_flags_round_trip() {
        let mut t = RoutingTable::default();
        let k = RoutingTable::key_of("acme/load-0");
        assert!(t.get(k).is_none());
        assert!(t.upsert(k, entry(3)).is_none());
        assert_eq!(t.get(k), Some(entry(3)));
        let prev = t.upsert(
            k,
            RouteEntry {
                owner: 5,
                tenant: 2,
                moved: true,
            },
        );
        assert_eq!(prev, Some(entry(3)));
        assert!(t.get(k).unwrap().moved);
        t.clear_moved(k);
        let e = t.get(k).unwrap();
        assert!(!e.moved);
        assert_eq!((e.owner, e.tenant), (5, 2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn footprint_stays_inside_the_budget_at_scale() {
        let mut t = RoutingTable::default();
        for i in 0..100_000u64 {
            // Synthetic keys stand in for group hashes (any nonzero u64).
            t.upsert(i + 1, entry((i % 4) as u16));
        }
        assert_eq!(t.len(), 100_000);
        assert!(
            t.bytes_per_group() <= DEFAULT_BYTES_PER_GROUP as f64,
            "measured {} B/group",
            t.bytes_per_group()
        );
        assert!(!t.over_budget());
    }

    #[test]
    fn rebalance_counts_and_flags_only_real_moves() {
        use crate::assign::Membership;
        let before = Membership::new(["a:1", "b:1", "c:1"]);
        let mut after = before.clone();
        after.apply(&[], &["b:1".to_string()]);

        let mut t = RoutingTable::default();
        let groups: Vec<String> = (0..200).map(|i| format!("load-{i}")).collect();
        let mut owned_by_b = 0u64;
        for g in &groups {
            let k = RoutingTable::key_of(g);
            let owner = before.owner_index(k).unwrap();
            if before.backends()[owner].addr == "b:1" {
                owned_by_b += 1;
            }
            t.upsert(k, entry(owner as u16));
        }
        let moved = t.rebalance(&before, &after);
        assert_eq!(moved, owned_by_b, "exactly the dead backend's groups move");
        for g in &groups {
            let k = RoutingTable::key_of(g);
            let e = t.get(k).unwrap();
            let expect = after.owner_index(k).unwrap();
            assert_eq!(e.owner as usize, expect);
            let was_b = before
                .owner_index(k)
                .map(|o| before.backends()[o].addr.as_str())
                == Some("b:1");
            assert_eq!(e.moved, was_b);
        }
        let counts = t.groups_per_backend(after.len());
        assert_eq!(counts.iter().sum::<u64>(), 200);
    }
}
