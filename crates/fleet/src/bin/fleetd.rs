//! `fleetd` — coordinate a fleet of `symbiod` backends.
//!
//! ```text
//! fleetd --backends 127.0.0.1:7411,127.0.0.1:7412
//!        [--addr 127.0.0.1:0] [--timeout-ms 5000]
//!        [--budget-bytes 128] [--shed-trip 8]
//!        [--journal PATH] [--flap-threshold 3] [--flap-window-ms 10000]
//!        [--handoff-timeout-ms 2000]
//!        [--tenant id:priority:max_groups:rate[:burst]]...
//! ```
//!
//! Clients speak the same versioned envelope as against `symbiod`
//! (`Ingest`/`IngestBatch`/`Map` are proxied to each group's rendezvous
//! owner) plus the fleet verbs: `Route` resolves a group's owner,
//! `Assign` changes the membership (rebalancing the routed groups, with
//! a warm handoff of each moved group's state), and `FleetMetrics`
//! aggregates every backend's counters fleet-wide. `--tenant` may
//! repeat; groups name their tenant by prefix (`acme/load-0` → tenant
//! `acme`), and unknown tenants are admitted unconstrained.
//!
//! `--journal` makes the membership durable: every join/evict/drain is
//! CRC-framed to the file before it takes effect, and a restarted
//! fleetd replays it to a byte-identical routing view (the journal then
//! wins over `--backends`). `--flap-threshold`/`--flap-window-ms` tune
//! how many failed probes inside the window a backend survives before
//! eviction; `--handoff-timeout-ms` bounds each group's warm handoff.
//!
//! Fault injection mirrors symbiod: `SYMBIO_FAULTS` /
//! `SYMBIO_FAULT_SEED` arm the `fleet_proxy`, `handoff_export`,
//! `handoff_import` and `membership_write` sites (DESIGN.md §14).
//!
//! Prints `fleetd listening on <addr>` once bound (scripts wait for
//! that line), then serves until a client sends `"Shutdown"` — which
//! also forwards the shutdown to every backend.

use std::io::Write;
use std::time::Duration;
use symbio::Error;
use symbio_fleet::{FleetConfig, Fleetd, TenantSpec};

fn main() -> symbio::Result<()> {
    symbio::obs::fault::arm_from_env();
    let mut addr = "127.0.0.1:0".to_string();
    let mut backends: Vec<String> = Vec::new();
    let mut cfg = FleetConfig::default();

    let bad = |flag: &str, v: &str| Error::InvalidConfig(format!("bad value `{v}` for {flag}"));
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| Error::InvalidConfig(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--addr" => addr = value()?,
            "--backends" => {
                let v = value()?;
                backends.extend(v.split(',').filter(|s| !s.is_empty()).map(String::from));
            }
            "--timeout-ms" => {
                let v = value()?;
                let ms: u64 = v.parse().map_err(|_| bad("--timeout-ms", &v))?;
                cfg.timeout = Duration::from_millis(ms);
            }
            "--budget-bytes" => {
                let v = value()?;
                cfg.bytes_budget = v.parse().map_err(|_| bad("--budget-bytes", &v))?;
            }
            "--shed-trip" => {
                let v = value()?;
                cfg.shed_trip = v.parse().map_err(|_| bad("--shed-trip", &v))?;
            }
            "--journal" => cfg.journal = Some(value()?.into()),
            "--flap-threshold" => {
                let v = value()?;
                cfg.flap_threshold = v.parse().map_err(|_| bad("--flap-threshold", &v))?;
            }
            "--flap-window-ms" => {
                let v = value()?;
                let ms: u64 = v.parse().map_err(|_| bad("--flap-window-ms", &v))?;
                cfg.flap_window = Duration::from_millis(ms);
            }
            "--handoff-timeout-ms" => {
                let v = value()?;
                let ms: u64 = v.parse().map_err(|_| bad("--handoff-timeout-ms", &v))?;
                cfg.handoff_timeout = Duration::from_millis(ms);
            }
            "--tenant" => {
                let v = value()?;
                cfg.tenants
                    .push(TenantSpec::parse(&v).map_err(Error::InvalidConfig)?);
            }
            other => {
                return Err(Error::InvalidConfig(format!("unknown flag `{other}`")));
            }
        }
    }
    if backends.is_empty() {
        return Err(Error::InvalidConfig(
            "--backends needs at least one symbiod address".into(),
        ));
    }

    let daemon = Fleetd::bind(&addr, &backends, cfg)?;
    println!("fleetd listening on {}", daemon.local_addr());
    std::io::stdout().flush()?;
    daemon.run()
}
