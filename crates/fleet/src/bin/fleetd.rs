//! `fleetd` — coordinate a fleet of `symbiod` backends.
//!
//! ```text
//! fleetd --backends 127.0.0.1:7411,127.0.0.1:7412
//!        [--addr 127.0.0.1:0] [--timeout-ms 5000]
//!        [--budget-bytes 128] [--shed-trip 8]
//!        [--tenant id:priority:max_groups:rate[:burst]]...
//! ```
//!
//! Clients speak the same versioned envelope as against `symbiod`
//! (`Ingest`/`IngestBatch`/`Map` are proxied to each group's rendezvous
//! owner) plus the fleet verbs: `Route` resolves a group's owner,
//! `Assign` changes the membership (rebalancing the routed groups), and
//! `FleetMetrics` aggregates every backend's counters fleet-wide.
//! `--tenant` may repeat; groups name their tenant by prefix
//! (`acme/load-0` → tenant `acme`), and unknown tenants are admitted
//! unconstrained.
//!
//! Prints `fleetd listening on <addr>` once bound (scripts wait for
//! that line), then serves until a client sends `"Shutdown"` — which
//! also forwards the shutdown to every backend.

use std::io::Write;
use std::time::Duration;
use symbio::Error;
use symbio_fleet::{FleetConfig, Fleetd, TenantSpec};

fn main() -> symbio::Result<()> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut backends: Vec<String> = Vec::new();
    let mut cfg = FleetConfig::default();

    let bad = |flag: &str, v: &str| Error::InvalidConfig(format!("bad value `{v}` for {flag}"));
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || {
            args.next()
                .ok_or_else(|| Error::InvalidConfig(format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--addr" => addr = value()?,
            "--backends" => {
                let v = value()?;
                backends.extend(v.split(',').filter(|s| !s.is_empty()).map(String::from));
            }
            "--timeout-ms" => {
                let v = value()?;
                let ms: u64 = v.parse().map_err(|_| bad("--timeout-ms", &v))?;
                cfg.timeout = Duration::from_millis(ms);
            }
            "--budget-bytes" => {
                let v = value()?;
                cfg.bytes_budget = v.parse().map_err(|_| bad("--budget-bytes", &v))?;
            }
            "--shed-trip" => {
                let v = value()?;
                cfg.shed_trip = v.parse().map_err(|_| bad("--shed-trip", &v))?;
            }
            "--tenant" => {
                let v = value()?;
                cfg.tenants
                    .push(TenantSpec::parse(&v).map_err(Error::InvalidConfig)?);
            }
            other => {
                return Err(Error::InvalidConfig(format!("unknown flag `{other}`")));
            }
        }
    }
    if backends.is_empty() {
        return Err(Error::InvalidConfig(
            "--backends needs at least one symbiod address".into(),
        ));
    }

    let daemon = Fleetd::bind(&addr, &backends, cfg)?;
    println!("fleetd listening on {}", daemon.local_addr());
    std::io::stdout().flush()?;
    daemon.run()
}
