//! Multi-tenancy: per-tenant group quotas, token-bucket rate limits,
//! and the deterministic shed order used under backend backlog.
//!
//! A group names its tenant by prefix: `acme/load-3` belongs to tenant
//! `acme`; a group with no `/` belongs to the implicit `default`
//! tenant. Admission runs on the coordinator before any proxying:
//!
//! 1. **quota** — a tenant may route at most `max_groups` distinct
//!    groups; the first snapshot of a group past the quota is refused
//!    (`tenant_quota`, not retryable — the tenant must shrink);
//! 2. **rate** — a token bucket per tenant (`rate` tokens/sec, `burst`
//!    cap) paces request admission (`tenant_shed`, retryable);
//! 3. **shed** — when the owning backend signals backlog (degraded or
//!    busy replies), the coordinator sheds whole tenants in
//!    *deterministic* order — lowest priority first, ties broken by
//!    FNV-1a of the tenant id — so every replica sheds the same tenants
//!    and a shed tenant's traffic stays shed until pressure drops,
//!    rather than random requests failing across all tenants.
//!
//! Time is caller-supplied (`f64` seconds, monotonic) so tests drive
//! the buckets deterministically.

use symbio::hash::fnv1a_64;

/// Static description of one tenant.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// Tenant id (the group-name prefix before `/`).
    pub id: String,
    /// Shed priority: higher survives longer under backlog.
    pub priority: u8,
    /// Most distinct groups the tenant may route (0 = unlimited).
    pub max_groups: u64,
    /// Sustained admissions per second (0 = unlimited).
    pub rate: f64,
    /// Bucket capacity: how far above `rate` a burst may spike.
    pub burst: f64,
}

impl TenantSpec {
    /// An unconstrained tenant (no quota, no rate limit, priority 0).
    pub fn open(id: impl Into<String>) -> TenantSpec {
        TenantSpec {
            id: id.into(),
            priority: 0,
            max_groups: 0,
            rate: 0.0,
            burst: 0.0,
        }
    }

    /// Parse the CLI form `id:priority:max_groups:rate[:burst]`
    /// (`burst` defaults to `rate`).
    pub fn parse(s: &str) -> Result<TenantSpec, String> {
        let parts: Vec<&str> = s.split(':').collect();
        if !(4..=5).contains(&parts.len()) {
            return Err(format!(
                "tenant spec {s:?} is not id:priority:max_groups:rate[:burst]"
            ));
        }
        let fail = |field: &str| format!("tenant spec {s:?}: bad {field}");
        let rate: f64 = parts[3].parse().map_err(|_| fail("rate"))?;
        Ok(TenantSpec {
            id: parts[0].to_string(),
            priority: parts[1].parse().map_err(|_| fail("priority"))?,
            max_groups: parts[2].parse().map_err(|_| fail("max_groups"))?,
            rate,
            burst: match parts.get(4) {
                Some(b) => b.parse().map_err(|_| fail("burst"))?,
                None => rate,
            },
        })
    }
}

/// The tenant id a group name routes under.
pub fn tenant_of(group: &str) -> &str {
    match group.split_once('/') {
        Some((tenant, _)) if !tenant.is_empty() => tenant,
        _ => "default",
    }
}

/// Admission verdict for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Proxy it.
    Admit,
    /// The tenant is over its distinct-group quota (not retryable).
    QuotaExceeded,
    /// The tenant's token bucket is empty (retryable after backoff).
    RateLimited,
    /// The tenant is shed under backend backlog (retryable).
    Shed,
}

#[derive(Debug, Clone)]
struct TenantState {
    spec: TenantSpec,
    /// Distinct groups this tenant has routed.
    groups: u64,
    /// Token-bucket level at `refilled_at`.
    tokens: f64,
    refilled_at: f64,
    /// Requests admitted / refused (for operators; not on the wire).
    admitted: u64,
    refused: u64,
}

/// The tenant registry: specs, live quota/bucket state, and the
/// deterministic shed order.
#[derive(Debug, Clone, Default)]
pub struct TenantRegistry {
    tenants: Vec<TenantState>,
    /// Tenant indexes sorted into shed order: lowest priority first,
    /// ties by FNV-1a of the id.
    shed_order: Vec<u16>,
    /// How many tenants (prefix of `shed_order`) are currently shed.
    shed_count: usize,
}

impl TenantRegistry {
    /// A registry over `specs`; unknown tenants encountered at runtime
    /// are added as unconstrained (`TenantSpec::open`).
    pub fn new(specs: Vec<TenantSpec>) -> TenantRegistry {
        let mut reg = TenantRegistry::default();
        for spec in specs {
            reg.intern_spec(spec);
        }
        reg
    }

    fn intern_spec(&mut self, spec: TenantSpec) -> u16 {
        if let Some(i) = self.tenants.iter().position(|t| t.spec.id == spec.id) {
            self.tenants[i].spec = spec;
            self.resort();
            return i as u16;
        }
        let tokens = spec.burst;
        self.tenants.push(TenantState {
            spec,
            groups: 0,
            tokens,
            refilled_at: 0.0,
            admitted: 0,
            refused: 0,
        });
        self.resort();
        (self.tenants.len() - 1) as u16
    }

    fn resort(&mut self) {
        let mut order: Vec<u16> = (0..self.tenants.len() as u16).collect();
        order.sort_by_key(|&i| {
            let t = &self.tenants[i as usize];
            (t.spec.priority, fnv1a_64(t.spec.id.as_bytes()))
        });
        self.shed_order = order;
    }

    /// Index of `tenant`, interning an unconstrained spec on first
    /// sight.
    pub fn index_of(&mut self, tenant: &str) -> u16 {
        if let Some(i) = self.tenants.iter().position(|t| t.spec.id == tenant) {
            return i as u16;
        }
        self.intern_spec(TenantSpec::open(tenant))
    }

    /// The id of the tenant at `index`.
    pub fn id_of(&self, index: u16) -> &str {
        &self.tenants[index as usize].spec.id
    }

    /// Known tenants.
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// Whether no tenant is registered yet.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Raise/lower backlog pressure: the first `n` tenants of the shed
    /// order are refused until pressure drops. Clamped to the tenant
    /// count; at least one tenant always survives (shedding everyone is
    /// an outage, not load shedding).
    pub fn set_pressure(&mut self, n: usize) {
        self.shed_count = n.min(self.tenants.len().saturating_sub(1));
    }

    /// Current backlog pressure (shed tenant count).
    pub fn pressure(&self) -> usize {
        self.shed_count
    }

    /// The tenant ids currently shed, in shed order.
    pub fn shed_ids(&self) -> Vec<&str> {
        self.shed_order[..self.shed_count]
            .iter()
            .map(|&i| self.tenants[i as usize].spec.id.as_str())
            .collect()
    }

    fn is_shed(&self, index: u16) -> bool {
        self.shed_order[..self.shed_count].contains(&index)
    }

    /// Admit one request from tenant `index` at monotonic time `now`
    /// (seconds). `new_group` is whether the request would route a group
    /// the coordinator has not seen (quota accounting).
    pub fn admit(&mut self, index: u16, new_group: bool, now: f64) -> Admission {
        if self.is_shed(index) {
            self.tenants[index as usize].refused += 1;
            return Admission::Shed;
        }
        let t = &mut self.tenants[index as usize];
        if new_group && t.spec.max_groups > 0 && t.groups >= t.spec.max_groups {
            t.refused += 1;
            return Admission::QuotaExceeded;
        }
        if t.spec.rate > 0.0 {
            // Refill, clamped to the burst cap; monotonic time means the
            // elapsed term can't go negative.
            let elapsed = (now - t.refilled_at).max(0.0);
            t.tokens = (t.tokens + elapsed * t.spec.rate).min(t.spec.burst);
            t.refilled_at = now;
            if t.tokens < 1.0 {
                t.refused += 1;
                return Admission::RateLimited;
            }
            t.tokens -= 1.0;
        }
        if new_group {
            t.groups += 1;
        }
        t.admitted += 1;
        Admission::Admit
    }

    /// Total requests shed or refused across all tenants (feeds the
    /// `tenant_sheds` counter).
    pub fn refused_total(&self) -> u64 {
        self.tenants.iter().map(|t| t.refused).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tenant_prefix_parsing() {
        assert_eq!(tenant_of("acme/load-0"), "acme");
        assert_eq!(tenant_of("load-0"), "default");
        assert_eq!(tenant_of("/odd"), "default");
        assert_eq!(tenant_of("a/b/c"), "a");
    }

    #[test]
    fn spec_parsing_accepts_the_cli_form() {
        let s = TenantSpec::parse("acme:2:1000:50").unwrap();
        assert_eq!(s.id, "acme");
        assert_eq!(s.priority, 2);
        assert_eq!(s.max_groups, 1000);
        assert_eq!(s.rate, 50.0);
        assert_eq!(s.burst, 50.0);
        let s = TenantSpec::parse("b:0:0:10:40").unwrap();
        assert_eq!(s.burst, 40.0);
        assert!(TenantSpec::parse("nope").is_err());
        assert!(TenantSpec::parse("a:x:0:1").is_err());
    }

    #[test]
    fn quota_refuses_the_group_past_the_cap() {
        let mut reg = TenantRegistry::new(vec![TenantSpec {
            id: "t".into(),
            priority: 0,
            max_groups: 2,
            rate: 0.0,
            burst: 0.0,
        }]);
        let i = reg.index_of("t");
        assert_eq!(reg.admit(i, true, 0.0), Admission::Admit);
        assert_eq!(reg.admit(i, true, 0.0), Admission::Admit);
        assert_eq!(reg.admit(i, true, 0.0), Admission::QuotaExceeded);
        // Existing groups keep flowing; only *new* groups are refused.
        assert_eq!(reg.admit(i, false, 0.0), Admission::Admit);
        assert_eq!(reg.refused_total(), 1);
    }

    #[test]
    fn token_bucket_paces_and_refills_with_time() {
        let mut reg = TenantRegistry::new(vec![TenantSpec {
            id: "t".into(),
            priority: 0,
            max_groups: 0,
            rate: 10.0,
            burst: 2.0,
        }]);
        let i = reg.index_of("t");
        assert_eq!(reg.admit(i, false, 0.0), Admission::Admit);
        assert_eq!(reg.admit(i, false, 0.0), Admission::Admit);
        assert_eq!(reg.admit(i, false, 0.0), Admission::RateLimited);
        // 0.1 s at 10 tokens/s refills one admission.
        assert_eq!(reg.admit(i, false, 0.1), Admission::Admit);
        assert_eq!(reg.admit(i, false, 0.1), Admission::RateLimited);
        // Refill clamps at burst: a long sleep buys 2, not 20.
        assert_eq!(reg.admit(i, false, 10.0), Admission::Admit);
        assert_eq!(reg.admit(i, false, 10.0), Admission::Admit);
        assert_eq!(reg.admit(i, false, 10.0), Admission::RateLimited);
    }

    #[test]
    fn shed_order_is_priority_then_id_hash_and_spares_the_last_tenant() {
        let spec = |id: &str, priority| TenantSpec {
            id: id.into(),
            priority,
            max_groups: 0,
            rate: 0.0,
            burst: 0.0,
        };
        let mut reg = TenantRegistry::new(vec![
            spec("gold", 2),
            spec("bronze-a", 0),
            spec("bronze-b", 0),
            spec("silver", 1),
        ]);
        // Ties at priority 0 break by fnv1a(id): order must be stable
        // across independently constructed registries.
        let mut reg2 = TenantRegistry::new(vec![
            spec("bronze-b", 0),
            spec("silver", 1),
            spec("bronze-a", 0),
            spec("gold", 2),
        ]);
        reg.set_pressure(2);
        reg2.set_pressure(2);
        assert_eq!(reg.shed_ids(), reg2.shed_ids());
        let shed = reg.shed_ids();
        assert!(shed.iter().all(|t| t.starts_with("bronze")));

        let bronze_a = reg.index_of("bronze-a");
        let gold = reg.index_of("gold");
        assert_eq!(reg.admit(bronze_a, false, 0.0), Admission::Shed);
        assert_eq!(reg.admit(gold, false, 0.0), Admission::Admit);

        // Pressure past the tenant count still spares one tenant.
        reg.set_pressure(100);
        assert_eq!(reg.pressure(), 3);
        assert_eq!(reg.shed_ids().len(), 3);
        assert!(!reg.shed_ids().contains(&"gold"));

        reg.set_pressure(0);
        assert_eq!(reg.admit(bronze_a, false, 0.0), Admission::Admit);
    }
}
