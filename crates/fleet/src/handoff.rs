//! The per-group warm-handoff state machine (DESIGN.md §14).
//!
//! When a rebalance moves a group to a new owner, the coordinator tries
//! to carry the group's epoch-ring state across: **export** it from the
//! old owner, **import** it into the new one, and only then let the
//! route change become visible. The machine here tracks one group's
//! trip through that protocol:
//!
//! ```text
//!          Begin            Exported           Imported
//! Settled ───────▶ Exporting ───────▶ Importing ───────▶ Settled  (Warm)
//!    ▲                 │                  │
//!    │   ExportFailed / OwnerDied / timeout │ ImportFailed / OwnerDied / timeout
//!    └─────────────────┴──────────────────┘           (Cold)
//! ```
//!
//! Every path lands back in [`HandoffState::Settled`]: a handoff that
//! fails or overruns its budget settles **cold** — the new owner starts
//! the group from scratch, exactly as if no handoff had been attempted —
//! and never wedges the route. The machine is pure (no I/O, no clock of
//! its own; callers pass `now`), which is what makes it property-testable
//! under arbitrary event interleavings.

/// Where a group's handoff currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoffState {
    /// No handoff in flight; the route is authoritative.
    Settled,
    /// Waiting on the old owner's `ExportGroup` reply.
    Exporting,
    /// Waiting on the new owner's `ImportGroup` ack.
    Importing,
}

/// What just happened to an in-flight handoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoffEvent {
    /// The coordinator decided to move this group warm.
    Begin,
    /// The old owner returned the group's state.
    Exported,
    /// The old owner errored or returned garbage.
    ExportFailed,
    /// The new owner acked the import.
    Imported,
    /// The new owner errored or refused the import.
    ImportFailed,
    /// The peer died (or was evicted) mid-handoff.
    OwnerDied,
}

/// How a handoff settled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoffOutcome {
    /// State was carried to the new owner before the route flipped.
    Warm,
    /// The new owner starts cold (export/import failed or timed out).
    Cold,
}

/// One group's handoff machine. Timeouts are absolute against the
/// caller-supplied clock: any event observed after `timeout` seconds of
/// in-flight time first settles the machine cold, then (if the event is
/// a fresh [`HandoffEvent::Begin`]) may start a new attempt.
#[derive(Debug, Clone)]
pub struct Handoff {
    state: HandoffState,
    started: f64,
    timeout: f64,
}

impl Handoff {
    /// A settled machine with a per-attempt budget of `timeout` seconds
    /// (clamped to a small positive floor so a zero budget cannot make
    /// every attempt instantly cold *and* instantly restartable).
    pub fn new(timeout: f64) -> Handoff {
        Handoff {
            state: HandoffState::Settled,
            started: 0.0,
            timeout: timeout.max(1e-9),
        }
    }

    /// The current state.
    pub fn state(&self) -> HandoffState {
        self.state
    }

    /// Feed one event at time `now` (seconds, same clock as every other
    /// call). Returns `Some` exactly when an in-flight attempt settles:
    /// at most one outcome per [`HandoffEvent::Begin`].
    pub fn step(&mut self, event: HandoffEvent, now: f64) -> Option<HandoffOutcome> {
        // An expired attempt settles cold before the event lands; the
        // late event then falls through to the Settled arms below (so a
        // straggling `Exported` from a timed-out export is ignored, not
        // resurrected).
        let mut outcome = None;
        if self.state != HandoffState::Settled && now - self.started > self.timeout {
            self.state = HandoffState::Settled;
            outcome = Some(HandoffOutcome::Cold);
        }
        match (self.state, event) {
            (HandoffState::Settled, HandoffEvent::Begin) => {
                self.state = HandoffState::Exporting;
                self.started = now;
                outcome
            }
            (HandoffState::Exporting, HandoffEvent::Exported) => {
                self.state = HandoffState::Importing;
                outcome
            }
            (HandoffState::Exporting, HandoffEvent::ExportFailed | HandoffEvent::OwnerDied) => {
                self.state = HandoffState::Settled;
                Some(HandoffOutcome::Cold)
            }
            (HandoffState::Importing, HandoffEvent::Imported) => {
                self.state = HandoffState::Settled;
                Some(HandoffOutcome::Warm)
            }
            (HandoffState::Importing, HandoffEvent::ImportFailed | HandoffEvent::OwnerDied) => {
                self.state = HandoffState::Settled;
                Some(HandoffOutcome::Cold)
            }
            // Everything else is stale or out of order (an `Exported`
            // while settled, a duplicate `Begin` mid-flight, a failure
            // report for an attempt that already settled): ignore it.
            _ => outcome,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_settles_warm() {
        let mut h = Handoff::new(1.0);
        assert_eq!(h.step(HandoffEvent::Begin, 0.0), None);
        assert_eq!(h.state(), HandoffState::Exporting);
        assert_eq!(h.step(HandoffEvent::Exported, 0.1), None);
        assert_eq!(h.state(), HandoffState::Importing);
        assert_eq!(
            h.step(HandoffEvent::Imported, 0.2),
            Some(HandoffOutcome::Warm)
        );
        assert_eq!(h.state(), HandoffState::Settled);
    }

    #[test]
    fn export_failure_settles_cold() {
        let mut h = Handoff::new(1.0);
        h.step(HandoffEvent::Begin, 0.0);
        assert_eq!(
            h.step(HandoffEvent::ExportFailed, 0.1),
            Some(HandoffOutcome::Cold)
        );
        assert_eq!(h.state(), HandoffState::Settled);
    }

    #[test]
    fn timeout_beats_a_late_exported() {
        let mut h = Handoff::new(1.0);
        h.step(HandoffEvent::Begin, 0.0);
        // The export reply limps in after the budget: the attempt is
        // already cold and the reply must not resurrect it.
        assert_eq!(
            h.step(HandoffEvent::Exported, 2.0),
            Some(HandoffOutcome::Cold)
        );
        assert_eq!(h.state(), HandoffState::Settled);
        // And a late Imported for the dead attempt is pure noise.
        assert_eq!(h.step(HandoffEvent::Imported, 2.1), None);
    }

    #[test]
    fn timeout_settle_still_admits_a_fresh_begin() {
        let mut h = Handoff::new(1.0);
        h.step(HandoffEvent::Begin, 0.0);
        // A new Begin after the deadline settles the stale attempt cold
        // and starts a fresh one in the same step.
        assert_eq!(h.step(HandoffEvent::Begin, 5.0), Some(HandoffOutcome::Cold));
        assert_eq!(h.state(), HandoffState::Exporting);
        h.step(HandoffEvent::Exported, 5.1);
        assert_eq!(
            h.step(HandoffEvent::Imported, 5.2),
            Some(HandoffOutcome::Warm)
        );
    }

    #[test]
    fn stale_events_while_settled_are_ignored() {
        let mut h = Handoff::new(1.0);
        for ev in [
            HandoffEvent::Exported,
            HandoffEvent::ExportFailed,
            HandoffEvent::Imported,
            HandoffEvent::ImportFailed,
            HandoffEvent::OwnerDied,
        ] {
            assert_eq!(h.step(ev, 0.0), None);
            assert_eq!(h.state(), HandoffState::Settled);
        }
    }
}
