//! Property pins for the fleet lifecycle machinery (ISSUE 9):
//!
//! (a) **handoff liveness** — under *any* interleaving of export
//!     timeouts, import failures, owner deaths and stray events, the
//!     per-group handoff machine settles back in `Settled`, reports at
//!     most one outcome per `Begin`, and only reports `Warm` for a
//!     begin→export→import run that stayed inside its budget;
//! (b) **single ownership** — whatever the handoff machinery does, the
//!     route itself stays a pure function of the membership: at every
//!     epoch each group has exactly one owner;
//! (c) **journal replay equivalence** — a membership journal with an
//!     arbitrarily torn tail replays to exactly the membership of its
//!     valid prefix (truncation loses at most the torn record, never
//!     corrupts).
//!
//! Values fan out from one `u64` seed via a local xorshift generator,
//! the same idiom as the serve crate's codec properties (the vendored
//! proptest surface is deliberately small).

use proptest::prelude::*;
use symbio_fleet::membership::{decode_member_frame, MemberJournal, MemberRecord};
use symbio_fleet::{Handoff, HandoffEvent, HandoffOutcome, HandoffState, Membership};

/// Deterministic value generator (xorshift64*), seeded per case.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Gen {
        Gen(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }

    fn event(&mut self) -> HandoffEvent {
        match self.below(6) {
            0 => HandoffEvent::Begin,
            1 => HandoffEvent::Exported,
            2 => HandoffEvent::ExportFailed,
            3 => HandoffEvent::Imported,
            4 => HandoffEvent::ImportFailed,
            _ => HandoffEvent::OwnerDied,
        }
    }
}

proptest! {
    #[test]
    fn any_interleaving_settles_with_at_most_one_outcome_per_begin(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let timeout = (1.0 + gen.below(1000) as f64) / 1000.0;
        let mut machine = Handoff::new(timeout);
        let mut now = 0.0;
        let mut begins = 0u32;
        let mut outcomes = 0u32;
        // Warm requires the exact Begin → Exported → Imported path with
        // no failure in between; track it as a tiny reference model.
        let mut warm_legal = false;
        let steps = 1 + gen.below(64);
        for _ in 0..steps {
            now += gen.below(2000) as f64 / 1000.0;
            let ev = gen.event();
            let before = machine.state();
            let out = machine.step(ev, now);
            // A Begin opens a new attempt when the machine was settled —
            // or when it settled a timed-out attempt in this same step
            // (out is Some) and restarted.
            if ev == HandoffEvent::Begin
                && (before == HandoffState::Settled || out.is_some())
            {
                begins += 1;
                warm_legal = false;
            }
            if before == HandoffState::Exporting && ev == HandoffEvent::Exported {
                warm_legal = true;
            }
            if let Some(o) = out {
                outcomes += 1;
                if o == HandoffOutcome::Warm {
                    // A warm settle must come from a legal run that the
                    // machine itself still considered in flight.
                    prop_assert!(warm_legal, "warm without an in-budget export");
                }
                warm_legal = false;
            }
            // An outcome always means the attempt it closed is settled
            // (a same-step Begin may already have opened the next one).
            if out.is_some() && ev != HandoffEvent::Begin {
                prop_assert_eq!(machine.state(), HandoffState::Settled);
            }
        }
        // Owner death always lands the machine in Settled, and the
        // books balance: no attempt yields more than one outcome.
        let final_out = machine.step(HandoffEvent::OwnerDied, now + 1.0);
        outcomes += u32::from(final_out.is_some());
        prop_assert_eq!(machine.state(), HandoffState::Settled);
        prop_assert!(outcomes <= begins, "{} outcomes from {} begins", outcomes, begins);
    }

    #[test]
    fn every_epoch_has_exactly_one_owner_per_group(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let n = 1 + gen.below(5) as usize;
        let group_count = 1 + gen.below(40) as usize;
        let mut membership = Membership::new(
            (0..n).map(|i| format!("10.9.0.{i}:74")),
        );
        let groups: Vec<String> = (0..group_count).map(|i| format!("t/g-{i}")).collect();
        // At the initial epoch and after every membership change, each
        // group resolves to exactly one live owner — double-ownership
        // is unrepresentable in the route.
        for step in 0..(1 + gen.below(4)) {
            if step > 0 {
                let addrs = membership.addrs();
                if addrs.len() <= 1 {
                    break;
                }
                let victim = addrs[gen.below(addrs.len() as u64) as usize].clone();
                membership.apply(&[], &[victim]);
            }
            let addrs = membership.addrs();
            for g in &groups {
                let owner = membership.owner_of(g).expect("nonempty membership");
                prop_assert_eq!(addrs.iter().filter(|a| **a == owner).count(), 1);
            }
        }
    }

    #[test]
    fn torn_tails_replay_to_the_valid_prefix(seed in any::<u64>()) {
        let mut gen = Gen::new(seed);
        let path = {
            let mut p = std::env::temp_dir();
            p.push(format!(
                "symbio-members-prop-{}-{seed:016x}.jsonl",
                std::process::id(),
            ));
            p
        };
        let _ = std::fs::remove_file(&path);
        let addr = |i: u64| format!("10.8.0.{i}:74");
        let records: Vec<MemberRecord> = (0..1 + gen.below(11))
            .map(|_| match gen.below(4) {
                0 => MemberRecord::Seed {
                    backends: (0..=gen.below(3)).map(addr).collect(),
                },
                1 => MemberRecord::Join { addr: addr(gen.below(8)) },
                2 => MemberRecord::Evict { addr: addr(gen.below(8)) },
                _ => MemberRecord::Drain { addr: addr(gen.below(8)) },
            })
            .collect();
        {
            let (mut journal, _) = MemberJournal::open(&path).expect("open");
            for r in &records {
                journal.append(r).expect("append");
            }
        }
        let intact = std::fs::read(&path).expect("read back");

        // Tear the file at an arbitrary byte, then glue on garbage that
        // can't checksum: replay must reconstruct exactly the membership
        // of the longest whole-frame prefix.
        let cut_at = gen.below(intact.len() as u64 + 1) as usize;
        let mut torn = intact[..cut_at].to_vec();
        torn.extend_from_slice(b"ffffffff {\"torn\":");
        std::fs::write(&path, &torn).expect("tear");

        let whole_frames = intact[..cut_at]
            .split_inclusive(|&b| b == b'\n')
            .filter(|line| line.ends_with(b"\n"))
            .map(|line| &line[..line.len() - 1]);
        let mut expect: Option<Membership> = None;
        for line in whole_frames {
            match decode_member_frame(line) {
                Some(MemberRecord::Meta { .. }) | None => {}
                Some(MemberRecord::Seed { backends }) => {
                    expect = Some(Membership::new(backends));
                }
                Some(MemberRecord::Join { addr }) => {
                    expect
                        .get_or_insert_with(Membership::default)
                        .apply(&[addr], &[]);
                }
                Some(MemberRecord::Evict { addr }) | Some(MemberRecord::Drain { addr }) => {
                    expect
                        .get_or_insert_with(Membership::default)
                        .apply(&[], &[addr]);
                }
            }
        }

        let (_, replay) = MemberJournal::open(&path).expect("reopen torn");
        prop_assert!(replay.truncated, "the glued garbage is always a torn tail");
        prop_assert_eq!(replay.membership, expect);
        let _ = std::fs::remove_file(&path);
    }
}
