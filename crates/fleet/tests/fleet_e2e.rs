//! End-to-end fleet tests over loopback TCP: real `Symbiod` backends,
//! a real `Fleetd` coordinator, spoken to through the public wire
//! protocol. Covers the proxy path, the explicit fleet verbs, the
//! rebalance-on-`Assign` path, the auto-eviction of a killed backend
//! (zero lost acks), tenant admission, and fleet-wide metrics
//! aggregation.

use std::net::SocketAddr;
use std::time::Duration;
use symbio_allocator::WeightSortPolicy;
use symbio_fleet::{FleetConfig, Fleetd, Membership, TenantSpec};
use symbio_machine::{ProcView, SigSnapshot, ThreadView};
use symbio_online::{OnlineConfig, OnlineEngine};
use symbio_serve::{Encoding, Request, Response, ServeConfig, Symbiod, WireClient};

fn thread_view(tid: usize, occ: f64) -> ThreadView {
    ThreadView {
        tid,
        pid: tid,
        name: format!("p{tid}"),
        occupancy: occ,
        symbiosis: vec![50.0, 50.0],
        overlap: vec![5.0, 5.0],
        last_occupancy: occ as u32,
        last_core: Some(tid % 2),
        samples: 8,
        filter_len: 64,
        l2_miss_rate: 0.2,
        l2_misses: 100,
        retired: 1000,
    }
}

fn snapshot(group: &str, seq: u64) -> SigSnapshot {
    let occ = [40.0, 30.0, 20.0, 10.0];
    SigSnapshot {
        group: group.to_string(),
        seq,
        now_cycles: seq * 1_000,
        cores: 2,
        domains: vec![2],
        procs: (0..4)
            .map(|pid| ProcView {
                pid,
                name: format!("p{pid}"),
                threads: vec![thread_view(pid, occ[pid])],
            })
            .collect(),
    }
}

/// One in-process backend on an ephemeral port.
fn spawn_backend() -> (SocketAddr, std::thread::JoinHandle<symbio::Result<()>>) {
    let engine =
        OnlineEngine::new(Box::new(WeightSortPolicy), OnlineConfig::default()).expect("engine");
    let cfg = ServeConfig {
        workers: 2,
        backlog: 16,
        deadline: Duration::from_secs(5),
    };
    let daemon = Symbiod::bind("127.0.0.1:0", engine, cfg).expect("bind backend");
    let addr = daemon.local_addr();
    (addr, std::thread::spawn(move || daemon.run()))
}

/// A coordinator over `n` fresh backends, plus a negotiated client.
#[allow(clippy::type_complexity)] // a test rig bundle, unpacked at every call site
fn spawn_fleet(
    n: usize,
    cfg: FleetConfig,
) -> (
    Vec<SocketAddr>,
    Vec<std::thread::JoinHandle<symbio::Result<()>>>,
    SocketAddr,
    std::thread::JoinHandle<symbio::Result<()>>,
    WireClient,
) {
    let mut addrs = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..n {
        let (addr, handle) = spawn_backend();
        addrs.push(addr);
        handles.push(handle);
    }
    let backend_strs: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
    let fleet = Fleetd::bind("127.0.0.1:0", &backend_strs, cfg).expect("bind fleetd");
    let fleet_addr = fleet.local_addr();
    let fleet_handle = std::thread::spawn(move || fleet.run());
    let mut client =
        WireClient::connect(fleet_addr, Duration::from_secs(5)).expect("connect fleetd");
    client.hello(Encoding::Binary).expect("negotiate binary");
    (addrs, handles, fleet_addr, fleet_handle, client)
}

fn shutdown_and_join(
    client: &mut WireClient,
    backends: Vec<std::thread::JoinHandle<symbio::Result<()>>>,
    fleet: std::thread::JoinHandle<symbio::Result<()>>,
) {
    let reply = client.exchange(&Request::Shutdown).expect("shutdown ack");
    assert!(matches!(reply, Response::Ok), "got {reply:?}");
    for h in backends {
        h.join().expect("backend thread").expect("backend exit");
    }
    fleet.join().expect("fleet thread").expect("fleet exit");
}

#[test]
fn proxies_ingest_and_map_and_routes_match_the_pure_assignment() {
    let (addrs, backends, _, fleet, mut client) = spawn_fleet(2, FleetConfig::default());
    let backend_strs: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
    let reference = Membership::new(backend_strs);

    // Ingest across several groups: every ack is a real engine decision
    // proxied from the owning backend.
    for g in ["acme/load-0", "acme/load-1", "beta/load-0", "solo"] {
        for seq in 0..4u64 {
            let reply = client
                .exchange(&Request::Ingest(snapshot(g, seq)))
                .expect("proxied ingest");
            assert!(
                matches!(reply, Response::Decision(_)),
                "group {g} seq {seq}: {reply:?}"
            );
        }
        // Route agrees with an independently computed assignment.
        let reply = client
            .exchange(&Request::Route {
                group: g.to_string(),
            })
            .expect("route");
        match reply {
            Response::Route {
                group,
                backend,
                epoch,
            } => {
                assert_eq!(group, g);
                assert_eq!(backend, reference.owner_of(g).unwrap());
                assert_eq!(epoch, 1);
            }
            other => panic!("expected Route, got {other:?}"),
        }
        // Map proxies to the same backend that saw the ingests.
        let reply = client
            .exchange(&Request::Map {
                group: g.to_string(),
            })
            .expect("map");
        match reply {
            Response::Map { group, epochs, .. } => {
                assert_eq!(group, g);
                assert_eq!(epochs, 4);
            }
            other => panic!("expected Map, got {other:?}"),
        }
    }

    // Fleet metrics aggregate the backends' engine counters.
    let reply = client.exchange(&Request::FleetMetrics).expect("metrics");
    match reply {
        Response::FleetMetrics(snap) => {
            assert_eq!(snap.epoch, 1);
            assert_eq!(snap.backends.len(), 2);
            assert!(snap.backends.iter().all(|b| b.healthy));
            assert_eq!(snap.aggregate.online_epochs, 16);
            assert!(snap.aggregate.fleet_routes > 0);
            let groups: u64 = snap.backends.iter().map(|b| b.groups).sum();
            assert_eq!(groups, 4);
        }
        other => panic!("expected FleetMetrics, got {other:?}"),
    }

    shutdown_and_join(&mut client, backends, fleet);
}

#[test]
fn assign_rebalances_and_moved_groups_get_one_route_moved() {
    let (addrs, backends, _, fleet, mut client) = spawn_fleet(3, FleetConfig::default());

    // Route 30 groups through the fleet.
    let groups: Vec<String> = (0..30).map(|i| format!("t{}/g-{i}", i % 3)).collect();
    for g in &groups {
        let reply = client
            .exchange(&Request::Ingest(snapshot(g, 0)))
            .expect("ingest");
        assert!(matches!(reply, Response::Decision(_)));
    }

    // Drop the lexically first backend via an explicit Assign.
    let backend_strs: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
    let before = Membership::new(backend_strs.clone());
    let victim = before.addrs()[0].clone();
    let owned_by_victim: Vec<&String> = groups
        .iter()
        .filter(|g| before.owner_of(g).unwrap() == victim)
        .collect();
    let reply = client
        .exchange(&Request::Assign {
            add: vec![],
            remove: vec![victim.clone()],
        })
        .expect("assign");
    match reply {
        Response::FleetView(view) => {
            assert_eq!(view.epoch, 2);
            assert_eq!(view.backends.len(), 2);
            assert!(!view.backends.contains(&victim));
            assert_eq!(view.moved as usize, owned_by_victim.len());
        }
        other => panic!("expected FleetView, got {other:?}"),
    }

    // Every moved group answers route_moved exactly once, then serves;
    // unmoved groups never see it.
    for g in &groups {
        let was_victims = before.owner_of(g).unwrap() == victim;
        let reply = client
            .exchange(&Request::Ingest(snapshot(g, 1)))
            .expect("post-rebalance ingest");
        if was_victims {
            match reply {
                Response::Error {
                    code, retryable, ..
                } => {
                    assert_eq!(code, "route_moved");
                    assert!(retryable);
                }
                other => panic!("moved group {g} got {other:?}"),
            }
            // The retry proxies to the new owner.
            let retry = client
                .exchange(&Request::Ingest(snapshot(g, 1)))
                .expect("retry after route_moved");
            assert!(matches!(retry, Response::Decision(_)), "{g}: {retry:?}");
        } else {
            assert!(matches!(reply, Response::Decision(_)), "{g}: {reply:?}");
        }
    }

    // The explicitly removed (still healthy) backend needs its own
    // shutdown — the coordinator no longer fronts it.
    let victim_sock: SocketAddr = victim.parse().unwrap();
    let mut direct = WireClient::connect(victim_sock, Duration::from_secs(5)).expect("direct");
    assert!(matches!(
        direct.exchange(&Request::Shutdown).expect("drain victim"),
        Response::Ok
    ));

    shutdown_and_join(&mut client, backends, fleet);
}

#[test]
fn killed_backend_is_auto_evicted_with_zero_lost_acks() {
    let (addrs, backends, _, fleet, mut client) = spawn_fleet(2, FleetConfig::default());
    let backend_strs: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
    let reference = Membership::new(backend_strs);

    let groups: Vec<String> = (0..20).map(|i| format!("kill/g-{i}")).collect();
    for g in &groups {
        let reply = client
            .exchange(&Request::Ingest(snapshot(g, 0)))
            .expect("ingest");
        assert!(matches!(reply, Response::Decision(_)));
    }

    // Kill one backend out from under the coordinator (a real drain, but
    // the coordinator is not told — it finds out from the dead socket).
    let victim = reference.addrs()[0].clone();
    let victim_sock: SocketAddr = victim.parse().unwrap();
    let mut direct = WireClient::connect(victim_sock, Duration::from_secs(5)).expect("direct");
    assert!(matches!(
        direct.exchange(&Request::Shutdown).expect("kill backend"),
        Response::Ok
    ));

    // Every group keeps getting real acks. The first request to hit the
    // dead owner auto-evicts it (internal retry, no client-visible
    // error); the other relocated groups answer `route_moved` once —
    // the retryable tell-the-client-to-re-resolve path — and serve on
    // the retry. Nothing is lost either way.
    for g in &groups {
        let mut reply = client
            .exchange(&Request::Ingest(snapshot(g, 1)))
            .expect("post-kill ingest");
        if let Response::Error {
            ref code,
            retryable,
            ..
        } = reply
        {
            assert_eq!(code, "route_moved", "group {g}: {reply:?}");
            assert!(retryable);
            reply = client
                .exchange(&Request::Ingest(snapshot(g, 1)))
                .expect("retry after route_moved");
        }
        assert!(
            matches!(reply, Response::Decision(_)),
            "group {g} lost its ack: {reply:?}"
        );
    }

    // The eviction shows up in the fleet counters and membership.
    let reply = client.exchange(&Request::FleetMetrics).expect("metrics");
    match reply {
        Response::FleetMetrics(snap) => {
            assert_eq!(snap.backends.len(), 1);
            assert_ne!(snap.backends[0].addr, victim);
            assert!(snap.aggregate.fleet_backend_errors > 0);
            let moved_any = reference
                .addrs()
                .iter()
                .any(|_| snap.aggregate.fleet_rebalance_moves > 0);
            assert!(moved_any, "rebalance moves must be counted");
        }
        other => panic!("expected FleetMetrics, got {other:?}"),
    }

    shutdown_and_join(&mut client, backends, fleet);
}

#[test]
fn planned_drain_warm_hands_off_moved_groups_with_state_intact() {
    let (addrs, backends, _, fleet, mut client) = spawn_fleet(3, FleetConfig::default());
    let backend_strs: Vec<String> = addrs.iter().map(|a| a.to_string()).collect();
    let before = Membership::new(backend_strs);

    let groups: Vec<String> = (0..18).map(|i| format!("warm/g-{i}")).collect();
    for g in &groups {
        for seq in 0..4u64 {
            let reply = client
                .exchange(&Request::Ingest(snapshot(g, seq)))
                .expect("ingest");
            assert!(matches!(reply, Response::Decision(_)));
        }
    }

    // Snapshot every group's exported state while the fleet is quiet:
    // the handoff must carry exactly this across the drain.
    let export = |client: &mut WireClient, g: &String| {
        let mut reply = client
            .exchange(&Request::ExportGroup { group: g.clone() })
            .expect("export");
        // A moved group answers route_moved once before serving.
        if matches!(reply, Response::Error { ref code, .. } if code == "route_moved") {
            reply = client
                .exchange(&Request::ExportGroup { group: g.clone() })
                .expect("export retry");
        }
        match reply {
            Response::GroupState { record, .. } => record.expect("ingested group has state"),
            other => panic!("expected GroupState for {g}, got {other:?}"),
        }
    };
    let digests: Vec<_> = groups.iter().map(|g| export(&mut client, g)).collect();

    // Drain the lexically first backend on purpose — it stays alive, so
    // every group it owned must move *warm*.
    let victim = before.addrs()[0].clone();
    let moved_groups: Vec<&String> = groups
        .iter()
        .filter(|g| before.owner_of(g).unwrap() == victim)
        .collect();
    assert!(
        !moved_groups.is_empty(),
        "rendezvous spreads 18 groups over 3"
    );
    let reply = client
        .exchange(&Request::Assign {
            add: vec![],
            remove: vec![victim.clone()],
        })
        .expect("assign");
    assert!(matches!(reply, Response::FleetView(_)));

    // Exported-state digest equality: the new owner serves the exact
    // record the old owner held.
    for (g, before_record) in groups.iter().zip(&digests) {
        let after_record = export(&mut client, g);
        assert_eq!(
            &after_record, before_record,
            "group {g} lost state across the drain"
        );
    }

    // Every moved group was a warm handoff; nothing fell back cold.
    let reply = client.exchange(&Request::FleetMetrics).expect("metrics");
    match reply {
        Response::FleetMetrics(snap) => {
            assert_eq!(
                snap.aggregate.fleet_warm_handoffs,
                moved_groups.len() as u64
            );
            assert_eq!(snap.aggregate.fleet_cold_fallbacks, 0);
            assert!(snap.aggregate.membership_epochs >= 1);
        }
        other => panic!("expected FleetMetrics, got {other:?}"),
    }

    // The drained backend is out of the fleet; shut it down directly.
    let victim_sock: SocketAddr = victim.parse().unwrap();
    let mut direct = WireClient::connect(victim_sock, Duration::from_secs(5)).expect("direct");
    assert!(matches!(
        direct.exchange(&Request::Shutdown).expect("drain victim"),
        Response::Ok
    ));

    shutdown_and_join(&mut client, backends, fleet);
}

#[test]
fn import_group_is_refused_at_the_coordinator() {
    let (_, backends, _, fleet, mut client) = spawn_fleet(1, FleetConfig::default());
    let reply = client
        .exchange(&Request::ImportGroup(
            symbio_online::journal::GroupRecord::default(),
        ))
        .expect("import attempt");
    match reply {
        Response::Error {
            code, retryable, ..
        } => {
            assert_eq!(code, "backend_verb");
            assert!(!retryable);
        }
        other => panic!("expected backend_verb, got {other:?}"),
    }
    shutdown_and_join(&mut client, backends, fleet);
}

#[test]
fn what_if_proxies_to_the_owner_and_subscribe_is_refused() {
    let (_, backends, _, fleet, mut client) = spawn_fleet(2, FleetConfig::default());

    // Seed a group so its owner has epoch-ring state to evaluate.
    for seq in 0..4u64 {
        let reply = client
            .exchange(&Request::Ingest(snapshot("wi/load-0", seq)))
            .expect("seed ingest");
        assert!(matches!(reply, Response::Decision(_)), "got {reply:?}");
    }

    // WhatIf crosses the coordinator to the group's owner and comes back
    // as a real counterfactual answer — first computed, then (identical
    // query, no intervening mutation) from the owner's shard memo.
    let query = Request::WhatIf(snapshot("wi/load-0", 100));
    match client.exchange(&query).expect("what-if") {
        Response::WhatIf {
            group, memo_hit, ..
        } => {
            assert_eq!(group, "wi/load-0");
            assert!(!memo_hit, "first what-if cannot be a memo hit");
        }
        other => panic!("expected WhatIf, got {other:?}"),
    }
    match client.exchange(&query).expect("what-if repeat") {
        Response::WhatIf { memo_hit, .. } => {
            assert!(memo_hit, "identical repeat must hit the owner's memo")
        }
        other => panic!("expected WhatIf, got {other:?}"),
    }

    // Explain proxies the same way; these backends run without
    // explanation recording, so the answer is an explicit None.
    match client
        .exchange(&Request::Explain {
            group: "wi/load-0".to_string(),
        })
        .expect("explain")
    {
        Response::Explained { group, explanation } => {
            assert_eq!(group, "wi/load-0");
            assert!(explanation.is_none());
        }
        other => panic!("expected Explained, got {other:?}"),
    }

    // Subscribe has no proxy path: the coordinator holds no long-lived
    // push channel to a backend, so it refuses with `backend_verb`.
    match client.exchange(&Request::Subscribe).expect("subscribe") {
        Response::Error {
            code, retryable, ..
        } => {
            assert_eq!(code, "backend_verb");
            assert!(!retryable);
        }
        other => panic!("expected backend_verb, got {other:?}"),
    }

    shutdown_and_join(&mut client, backends, fleet);
}

#[test]
fn restarted_fleetd_replays_the_membership_journal_to_identical_routes() {
    let journal = {
        let mut p = std::env::temp_dir();
        p.push(format!("symbio-fleet-journal-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    };
    // Route/Assign never dial backends, so synthetic addresses keep
    // this test about the journal, not about live symbiods.
    let fake: Vec<String> = (0..3).map(|i| format!("127.0.0.1:1{i}")).collect();
    let groups: Vec<String> = (0..24).map(|i| format!("t{}/r-{i}", i % 2)).collect();
    let cfg = FleetConfig {
        journal: Some(journal.clone()),
        timeout: Duration::from_millis(200),
        ..FleetConfig::default()
    };

    let route_all = |client: &mut WireClient, groups: &[String]| -> Vec<(String, u64)> {
        groups
            .iter()
            .map(|g| {
                match client
                    .exchange(&Request::Route { group: g.clone() })
                    .expect("route")
                {
                    Response::Route { backend, epoch, .. } => (backend, epoch),
                    other => panic!("expected Route, got {other:?}"),
                }
            })
            .collect()
    };

    // First life: seed three backends, drain one (journaled), record
    // the full routing view.
    let fleet = Fleetd::bind("127.0.0.1:0", &fake, cfg.clone()).expect("bind 1");
    let addr = fleet.local_addr();
    let handle = std::thread::spawn(move || fleet.run());
    let mut client = WireClient::connect(addr, Duration::from_secs(5)).expect("connect");
    client.hello(Encoding::Binary).expect("negotiate");
    let reply = client
        .exchange(&Request::Assign {
            add: vec![],
            remove: vec![fake[0].clone()],
        })
        .expect("drain");
    match reply {
        Response::FleetView(view) => assert_eq!(view.epoch, 2),
        other => panic!("expected FleetView, got {other:?}"),
    }
    let before = route_all(&mut client, &groups);
    assert!(matches!(
        client.exchange(&Request::Shutdown).expect("shutdown"),
        Response::Ok
    ));
    handle.join().expect("fleet thread").expect("fleet exit");

    // Simulate the SIGKILL crash tail: half a frame of garbage on disk.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&journal)
            .expect("reopen journal");
        f.write_all(b"deadbeef {\"Evict\":{\"addr\":")
            .expect("tear");
    }

    // Second life: the backends argument is deliberately wrong — the
    // journal must win and reproduce the identical routing view.
    let bogus = vec!["10.255.255.1:9".to_string()];
    let fleet = Fleetd::bind("127.0.0.1:0", &bogus, cfg).expect("bind 2");
    let addr = fleet.local_addr();
    let handle = std::thread::spawn(move || fleet.run());
    let mut client = WireClient::connect(addr, Duration::from_secs(5)).expect("reconnect");
    client.hello(Encoding::Binary).expect("negotiate");
    let after = route_all(&mut client, &groups);
    assert_eq!(after, before, "replayed routing view must be identical");
    match client.exchange(&Request::Metrics).expect("metrics") {
        Response::Metrics(c) => {
            // Seed + drain were journaled; the restart replayed both.
            assert_eq!(c.membership_epochs, 2);
            assert_eq!(c.recovery_replays, 1);
        }
        other => panic!("expected Metrics, got {other:?}"),
    }
    assert!(matches!(
        client.exchange(&Request::Shutdown).expect("shutdown 2"),
        Response::Ok
    ));
    handle
        .join()
        .expect("fleet thread 2")
        .expect("fleet exit 2");
    let _ = std::fs::remove_file(&journal);
}

#[test]
fn tenant_quota_and_rate_limits_are_enforced_at_the_coordinator() {
    let cfg = FleetConfig {
        tenants: vec![TenantSpec {
            id: "capped".into(),
            priority: 0,
            max_groups: 2,
            rate: 0.0,
            burst: 0.0,
        }],
        ..FleetConfig::default()
    };
    let (_, backends, _, fleet, mut client) = spawn_fleet(2, cfg);

    // Two distinct groups fit the quota; the third is refused without
    // costing the backends anything.
    for g in ["capped/a", "capped/b"] {
        let reply = client
            .exchange(&Request::Ingest(snapshot(g, 0)))
            .expect("ingest");
        assert!(matches!(reply, Response::Decision(_)));
    }
    let reply = client
        .exchange(&Request::Ingest(snapshot("capped/c", 0)))
        .expect("over-quota ingest");
    match reply {
        Response::Error {
            code, retryable, ..
        } => {
            assert_eq!(code, "tenant_quota");
            assert!(!retryable);
        }
        other => panic!("expected tenant_quota, got {other:?}"),
    }
    // Existing groups keep flowing, and other tenants are untouched.
    for g in ["capped/a", "free/x"] {
        let reply = client
            .exchange(&Request::Ingest(snapshot(g, 1)))
            .expect("ingest");
        assert!(matches!(reply, Response::Decision(_)), "{g}: {reply:?}");
    }
    let reply = client.exchange(&Request::FleetMetrics).expect("metrics");
    match reply {
        Response::FleetMetrics(snap) => assert_eq!(snap.aggregate.tenant_sheds, 1),
        other => panic!("expected FleetMetrics, got {other:?}"),
    }

    shutdown_and_join(&mut client, backends, fleet);
}
