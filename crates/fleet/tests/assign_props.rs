//! The two rebalance invariants the fleet's correctness rests on,
//! proptest-pinned (ISSUE 8 satellite 3):
//!
//! (a) **replica determinism** — two independently constructed
//!     coordinators given the same membership compute identical
//!     assignments for every group, regardless of the order the
//!     membership was built in;
//! (b) **minimal disruption** — removing one of N backends relocates at
//!     most ⌈groups/N⌉ + slack groups, and never relocates a group
//!     whose owner survived.

use proptest::prelude::*;
use symbio_fleet::{Membership, RouteEntry, RoutingTable};

/// A membership of `n` distinct synthetic backend addresses, seeded so
/// different draws exercise different address sets.
fn membership(n: usize, salt: u64) -> Membership {
    Membership::new((0..n).map(|i| format!("10.0.{salt}.{i}:74")))
}

/// Group names: a few tenants' worth of streams.
fn groups(count: usize) -> Vec<String> {
    (0..count)
        .map(|i| format!("tenant-{}/group-{i}", i % 5))
        .collect()
}

proptest! {
    #[test]
    fn replicas_compute_identical_assignments(
        n in 1usize..9,
        salt in 0u64..200,
        count in 1usize..400,
    ) {
        // Replica A gets the addresses in order; replica B gets them
        // reversed and with duplicates — the *set* is what matters.
        let addrs: Vec<String> = (0..n).map(|i| format!("10.0.{salt}.{i}:74")).collect();
        let a = Membership::new(addrs.clone());
        let mut rev: Vec<String> = addrs.iter().rev().cloned().collect();
        rev.extend(addrs.iter().cloned());
        let b = Membership::new(rev);
        prop_assert_eq!(a.addrs(), b.addrs());
        for g in groups(count) {
            prop_assert!(
                a.owner_of(&g) == b.owner_of(&g),
                "replicas disagree on {}", g
            );
        }
    }

    #[test]
    fn removal_moves_at_most_its_share_and_never_a_survivors_group(
        n in 2usize..9,
        salt in 0u64..200,
        count in 50usize..600,
        victim in 0usize..8,
    ) {
        let before = membership(n, salt);
        let victim_addr = before.addrs()[victim % n].clone();
        let mut after = before.clone();
        prop_assert!(after.apply(&[], std::slice::from_ref(&victim_addr)));

        let gs = groups(count);
        let mut moved = 0usize;
        for g in &gs {
            let was = before.owner_of(g).unwrap().to_string();
            let now = after.owner_of(g).unwrap().to_string();
            if was == victim_addr {
                // The dead backend's groups must leave it…
                prop_assert!(now != victim_addr);
                moved += 1;
            } else {
                // …and nobody else's may move at all.
                prop_assert!(
                    was == now,
                    "group {} moved off surviving owner {}", g, was
                );
            }
        }
        // The victim owns ~count/n of the groups. Rendezvous spreads
        // binomially around that mean; 4·σ of slack at these sizes is
        // √(count·(1/n)(1-1/n))·4 ≤ 4·√(count/4) = 2√count.
        let share = count.div_ceil(n);
        let slack = 2 * (count as f64).sqrt().ceil() as usize;
        prop_assert!(
            moved <= share + slack,
            "removal moved {} of {} groups (share {} + slack {})",
            moved, count, share, slack
        );
    }

    #[test]
    fn routing_table_rebalance_agrees_with_the_pure_assignment(
        n in 2usize..7,
        salt in 0u64..100,
        count in 20usize..300,
        victim in 0usize..8,
    ) {
        // The incremental table rebalance must land every group exactly
        // where a from-scratch resolution would, and report as moves
        // exactly the groups whose owner address changed.
        let before = membership(n, salt);
        let victim_addr = before.addrs()[victim % n].clone();
        let mut after = before.clone();
        after.apply(&[], std::slice::from_ref(&victim_addr));

        let mut table = RoutingTable::default();
        let gs = groups(count);
        let mut distinct = 0u64;
        for g in &gs {
            let key = RoutingTable::key_of(g);
            let owner = before.owner_index(key).unwrap() as u16;
            if table
                .upsert(key, RouteEntry { owner, tenant: 0, moved: false })
                .is_none()
            {
                distinct += 1;
            }
        }
        let moved = table.rebalance(&before, &after);
        let mut expected_moved = 0u64;
        let mut seen = std::collections::HashSet::new();
        for g in &gs {
            let key = RoutingTable::key_of(g);
            let entry = table.get(key).unwrap();
            let fresh = after.owner_index(key).unwrap();
            prop_assert_eq!(entry.owner as usize, fresh);
            let was = before.owner_of(g).unwrap();
            prop_assert_eq!(entry.moved, was == victim_addr);
            if was == victim_addr && seen.insert(key) {
                expected_moved += 1;
            }
        }
        prop_assert_eq!(moved, expected_moved);
        prop_assert_eq!(table.len() as u64, distinct);
    }
}
