//! Saturating counter array for the counting Bloom filter.

use serde::{Deserialize, Serialize};

/// Outcome of a counter update, reported so the signature unit can maintain
/// the per-core Core Filters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterEvent {
    /// The counter transitioned 0 → 1: a first line now hashes here.
    BecameNonZero,
    /// The counter transitioned 1 → 0: no live line hashes here any more.
    /// The hardware clears this index in *all* Core Filters.
    BecameZero,
    /// The counter changed without crossing zero.
    Changed,
    /// The counter was pinned at its saturation ceiling; the update was
    /// absorbed. Section 3.1 footnote: "L must be wide enough to prevent
    /// saturation" — we count these so experiments can verify that claim for
    /// a given width.
    Saturated,
    /// A decrement hit an already-zero counter (only possible when sampling
    /// or width misconfiguration loses increments); absorbed.
    Underflow,
}

/// An array of L-bit saturating up/down counters.
///
/// Models the CBF counter array of the paper's signature unit: one counter
/// per (sampled) cache line, incremented on L2 fill and decremented on
/// eviction. Counters saturate at `2^width - 1` instead of wrapping, and
/// clamp at zero instead of underflowing, and both conditions are counted so
/// that the Section 5.4 sizing claim (3-bit counters suffice) can be tested.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CounterArray {
    counters: Vec<u8>,
    ceiling: u8,
    saturation_events: u64,
    underflow_events: u64,
}

impl CounterArray {
    /// Create `len` zeroed counters of `width_bits` bits each
    /// (1 ≤ `width_bits` ≤ 8; the paper uses 3).
    pub fn new(len: usize, width_bits: u32) -> Self {
        assert!(
            (1..=8).contains(&width_bits),
            "counter width must be 1..=8 bits, got {width_bits}"
        );
        let ceiling = if width_bits == 8 {
            u8::MAX
        } else {
            (1u8 << width_bits) - 1
        };
        CounterArray {
            counters: vec![0; len],
            ceiling,
            saturation_events: 0,
            underflow_events: 0,
        }
    }

    /// Number of counters.
    #[inline]
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// True when the array has no counters.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }

    /// Saturation ceiling (`2^width - 1`).
    #[inline]
    pub fn ceiling(&self) -> u8 {
        self.ceiling
    }

    /// Current value of counter `idx`.
    #[inline]
    pub fn get(&self, idx: usize) -> u8 {
        self.counters[idx]
    }

    /// Increment counter `idx`, saturating at the ceiling.
    #[inline]
    pub fn increment(&mut self, idx: usize) -> CounterEvent {
        let c = &mut self.counters[idx];
        if *c == self.ceiling {
            self.saturation_events += 1;
            return CounterEvent::Saturated;
        }
        *c += 1;
        if *c == 1 {
            CounterEvent::BecameNonZero
        } else {
            CounterEvent::Changed
        }
    }

    /// Decrement counter `idx`, clamping at zero.
    #[inline]
    pub fn decrement(&mut self, idx: usize) -> CounterEvent {
        let c = &mut self.counters[idx];
        if *c == 0 {
            self.underflow_events += 1;
            return CounterEvent::Underflow;
        }
        *c -= 1;
        if *c == 0 {
            CounterEvent::BecameZero
        } else {
            CounterEvent::Changed
        }
    }

    /// Number of non-zero counters (live footprint of the whole cache as
    /// seen through the hash). Accumulated per 4 KiB block in a `u32` so
    /// the inner loop autovectorizes to byte-compare + `psadbw` sums.
    pub fn count_nonzero(&self) -> usize {
        let mut total = 0usize;
        for block in self.counters.chunks(4096) {
            let mut acc = 0u32;
            for &c in block {
                acc += u32::from(c != 0);
            }
            total += acc as usize;
        }
        total
    }

    /// Total increments absorbed at the ceiling so far.
    #[inline]
    pub fn saturation_events(&self) -> u64 {
        self.saturation_events
    }

    /// Total decrements absorbed at zero so far.
    #[inline]
    pub fn underflow_events(&self) -> u64 {
        self.underflow_events
    }

    /// Reset every counter (and the event tallies) to zero.
    pub fn clear(&mut self) {
        self.counters.fill(0);
        self.saturation_events = 0;
        self.underflow_events = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn increment_reports_transition() {
        let mut a = CounterArray::new(4, 3);
        assert_eq!(a.increment(0), CounterEvent::BecameNonZero);
        assert_eq!(a.increment(0), CounterEvent::Changed);
        assert_eq!(a.get(0), 2);
    }

    #[test]
    fn decrement_reports_transition() {
        let mut a = CounterArray::new(4, 3);
        a.increment(1);
        a.increment(1);
        assert_eq!(a.decrement(1), CounterEvent::Changed);
        assert_eq!(a.decrement(1), CounterEvent::BecameZero);
        assert_eq!(a.decrement(1), CounterEvent::Underflow);
        assert_eq!(a.underflow_events(), 1);
    }

    #[test]
    fn saturation_at_ceiling() {
        let mut a = CounterArray::new(1, 2); // ceiling = 3
        for _ in 0..3 {
            a.increment(0);
        }
        assert_eq!(a.get(0), 3);
        assert_eq!(a.increment(0), CounterEvent::Saturated);
        assert_eq!(a.get(0), 3);
        assert_eq!(a.saturation_events(), 1);
    }

    #[test]
    fn eight_bit_ceiling_is_255() {
        let a = CounterArray::new(1, 8);
        assert_eq!(a.ceiling(), 255);
    }

    #[test]
    #[should_panic(expected = "counter width")]
    fn zero_width_rejected() {
        let _ = CounterArray::new(4, 0);
    }

    #[test]
    fn count_nonzero_tracks_live() {
        let mut a = CounterArray::new(8, 3);
        a.increment(0);
        a.increment(3);
        a.increment(3);
        assert_eq!(a.count_nonzero(), 2);
        a.decrement(3);
        assert_eq!(a.count_nonzero(), 2);
        a.decrement(3);
        assert_eq!(a.count_nonzero(), 1);
    }

    #[test]
    fn clear_resets_everything() {
        let mut a = CounterArray::new(2, 1); // ceiling = 1
        a.increment(0);
        a.increment(0); // saturates
        a.decrement(1); // underflows
        a.clear();
        assert_eq!(a.count_nonzero(), 0);
        assert_eq!(a.saturation_events(), 0);
        assert_eq!(a.underflow_events(), 0);
    }

    proptest! {
        /// With a wide-enough counter, increments and decrements balance
        /// exactly: the counter equals inserts minus deletes at all times.
        #[test]
        fn prop_balanced_ops_exact(ops in proptest::collection::vec(any::<bool>(), 0..200)) {
            let mut a = CounterArray::new(1, 8);
            let mut model: i32 = 0;
            for inc in ops {
                if inc {
                    a.increment(0);
                    model += 1;
                } else if model > 0 {
                    a.decrement(0);
                    model -= 1;
                }
                if model > 255 { model = 255; } // out of proptest range anyway
                prop_assert_eq!(i32::from(a.get(0)), model);
            }
        }
    }
}
