//! # symbio-bits
//!
//! Low-level bit-manipulation substrate for the memory-footprint-signature
//! hardware model described in *Symbiotic Scheduling for Shared Caches in
//! Multi-Core Systems Using Memory Footprint Signature* (ICPP 2011).
//!
//! The paper's signature unit is built from two hardware primitives:
//!
//! * **bitvectors** — the per-core Core Filters (CF), Last Filters (LF) and
//!   the derived Running Bit Vector (RBV). All the paper's metrics are
//!   bit-parallel operations over these vectors: `RBV = CF & !LF`
//!   (the inverse of the implication `CF -> LF`), `occupancy =
//!   popcount(RBV)` and `symbiosis = popcount(RBV ^ CF_other)`.
//! * **saturating counter arrays** — the counting-Bloom-filter counters that
//!   track how many live cache lines hash onto each filter index.
//!
//! [`BitVec`] and [`CounterArray`] model exactly those two structures with
//! word-parallel (u64) implementations, so a simulated context switch costs
//! a few hundred nanoseconds rather than a bit-at-a-time walk.

#![warn(missing_docs)]

mod bitvec;
mod counters;

pub use bitvec::BitVec;
pub use counters::{CounterArray, CounterEvent};
