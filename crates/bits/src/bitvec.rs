//! Fixed-width bitvector with word-parallel bulk operations.

use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// A fixed-width bitvector backed by `u64` words.
///
/// This models the hardware bit arrays of the signature unit (Core Filter,
/// Last Filter, Running Bit Vector). The width is fixed at construction; all
/// binary operations require both operands to have the same width and panic
/// otherwise — mismatched filter widths would be a wiring bug in hardware,
/// so we treat them as a programming error rather than an `Err`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec[{}; ones={}]", self.len, self.count_ones())
    }
}

impl BitVec {
    /// Create an all-zero bitvector of `len` bits.
    pub fn new(len: usize) -> Self {
        let n_words = len.div_ceil(WORD_BITS);
        BitVec {
            len,
            words: vec![0; n_words],
        }
    }

    /// Number of bits in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero width.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mask for the partially-used last word (all ones when the width is a
    /// multiple of 64).
    #[inline]
    fn tail_mask(&self) -> u64 {
        let rem = self.len % WORD_BITS;
        if rem == 0 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        }
    }

    /// Set bit `idx` to one. Panics if out of range.
    #[inline]
    pub fn set(&mut self, idx: usize) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / WORD_BITS] |= 1u64 << (idx % WORD_BITS);
    }

    /// Clear bit `idx` to zero. Panics if out of range.
    #[inline]
    pub fn clear(&mut self, idx: usize) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / WORD_BITS] &= !(1u64 << (idx % WORD_BITS));
    }

    /// Read bit `idx`. Panics if out of range.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx / WORD_BITS] >> (idx % WORD_BITS)) & 1 == 1
    }

    /// Set every bit to zero.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Set every bit to one.
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        let mask = self.tail_mask();
        if let Some(last) = self.words.last_mut() {
            *last &= mask;
        }
    }

    /// Number of one bits (the paper's *occupancy weight* when applied to an
    /// RBV).
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Fraction of bits set, in `[0, 1]`. Zero-width vectors report 0.
    pub fn fill_ratio(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            f64::from(self.count_ones()) / self.len as f64
        }
    }

    /// True if every bit is set — a *saturated* filter conveys no footprint
    /// information (the paper's argument against presence bits and multiple
    /// hash functions).
    pub fn is_saturated(&self) -> bool {
        self.count_ones() as usize == self.len
    }

    fn assert_same_width(&self, other: &BitVec) {
        assert_eq!(
            self.len, other.len,
            "bitvector width mismatch: {} vs {}",
            self.len, other.len
        );
    }

    /// `self & other`, producing a new vector.
    pub fn and(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other);
        BitVec {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// `self | other`, producing a new vector.
    pub fn or(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other);
        BitVec {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// `self ^ other`, producing a new vector.
    pub fn xor(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other);
        BitVec {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a ^ b)
                .collect(),
        }
    }

    /// `self & !other` — the paper's Running Bit Vector construction:
    /// `RBV = ¬(CF → LF) = CF ∧ ¬LF` selects the bits set since the last
    /// snapshot.
    pub fn and_not(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other);
        BitVec {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
        }
    }

    /// `self & !other` written into `out` (same widths required) — the
    /// allocation-free RBV construction for hot paths that reuse a scratch
    /// vector across context switches.
    pub fn and_not_into(&self, other: &BitVec, out: &mut BitVec) {
        self.assert_same_width(other);
        self.assert_same_width(out);
        for ((o, a), b) in out.words.iter_mut().zip(&self.words).zip(&other.words) {
            *o = a & !b;
        }
    }

    /// `popcount(self & !other)` without materialising the intermediate
    /// vector (e.g. destroyed-predecessor-lines weight `|LF & !CF|`).
    pub fn and_not_popcount(&self, other: &BitVec) -> u32 {
        self.assert_same_width(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones())
            .sum()
    }

    /// Logical implication `self → other` (i.e. `!self | other`), masked to
    /// the vector width. Provided because the paper phrases the RBV as the
    /// inverse of this operation.
    pub fn implies(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other);
        let mask = self.tail_mask();
        let n = self.words.len();
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .enumerate()
            .map(|(i, (a, b))| {
                let w = !a | b;
                if i + 1 == n {
                    w & mask
                } else {
                    w
                }
            })
            .collect();
        BitVec {
            len: self.len,
            words,
        }
    }

    /// Bitwise NOT, masked to the vector width.
    pub fn not(&self) -> BitVec {
        let mask = self.tail_mask();
        let n = self.words.len();
        let words = self
            .words
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let v = !w;
                if i + 1 == n {
                    v & mask
                } else {
                    v
                }
            })
            .collect();
        BitVec {
            len: self.len,
            words,
        }
    }

    /// `popcount(self ^ other)` without materialising the intermediate
    /// vector — this is the paper's *symbiosis* metric between an RBV and a
    /// Core Filter (hardware: a tree of XOR gates feeding an adder).
    pub fn xor_popcount(&self, other: &BitVec) -> u32 {
        self.assert_same_width(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum()
    }

    /// `popcount(self & other)` without materialising the intermediate
    /// vector (overlap weight between two footprints).
    pub fn and_popcount(&self, other: &BitVec) -> u32 {
        self.assert_same_width(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// In-place `self |= other`.
    pub fn or_assign(&mut self, other: &BitVec) {
        self.assert_same_width(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Copy `other` into `self` (same width required). This is the hardware
    /// snapshot `LF ← CF` performed at a context switch.
    pub fn copy_from(&mut self, other: &BitVec) {
        self.assert_same_width(other);
        self.words.copy_from_slice(&other.words);
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let tz = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_is_all_zero() {
        let v = BitVec::new(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        assert!(!v.get(0));
        assert!(!v.get(129));
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut v = BitVec::new(200);
        for idx in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            v.set(idx);
            assert!(v.get(idx), "bit {idx} should be set");
        }
        assert_eq!(v.count_ones(), 8);
        v.clear(64);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut v = BitVec::new(10);
        v.set(10);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let a = BitVec::new(10);
        let b = BitVec::new(11);
        let _ = a.and(&b);
    }

    #[test]
    fn set_all_respects_tail() {
        let mut v = BitVec::new(70);
        v.set_all();
        assert_eq!(v.count_ones(), 70);
        assert!(v.is_saturated());
        // NOT of all-ones must be all zero (tail masked correctly).
        assert_eq!(v.not().count_ones(), 0);
    }

    #[test]
    fn and_not_is_rbv_semantics() {
        // CF has bits {1,2,3}; LF (snapshot) has {1}; RBV must be {2,3}.
        let mut cf = BitVec::new(8);
        let mut lf = BitVec::new(8);
        cf.set(1);
        cf.set(2);
        cf.set(3);
        lf.set(1);
        let rbv = cf.and_not(&lf);
        assert!(!rbv.get(1));
        assert!(rbv.get(2));
        assert!(rbv.get(3));
        assert_eq!(rbv.count_ones(), 2);
    }

    #[test]
    fn rbv_equals_not_implies() {
        // The paper defines RBV = ¬(CF → LF); verify equivalence with and_not.
        let mut cf = BitVec::new(67);
        let mut lf = BitVec::new(67);
        for i in (0..67).step_by(3) {
            cf.set(i);
        }
        for i in (0..67).step_by(6) {
            lf.set(i);
        }
        assert_eq!(cf.and_not(&lf), cf.implies(&lf).not());
    }

    #[test]
    fn xor_popcount_matches_xor_then_count() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        for i in (0..100).step_by(2) {
            a.set(i);
        }
        for i in (0..100).step_by(5) {
            b.set(i);
        }
        assert_eq!(a.xor_popcount(&b), a.xor(&b).count_ones());
    }

    #[test]
    fn iter_ones_ascending() {
        let mut v = BitVec::new(150);
        let idxs = [3usize, 64, 65, 100, 149];
        for &i in &idxs {
            v.set(i);
        }
        let got: Vec<usize> = v.iter_ones().collect();
        assert_eq!(got, idxs);
    }

    #[test]
    fn copy_from_snapshots() {
        let mut cf = BitVec::new(32);
        cf.set(5);
        let mut lf = BitVec::new(32);
        lf.copy_from(&cf);
        assert!(lf.get(5));
        cf.set(6);
        assert!(!lf.get(6), "snapshot must not alias the source");
    }

    #[test]
    fn fill_ratio_bounds() {
        let mut v = BitVec::new(10);
        assert_eq!(v.fill_ratio(), 0.0);
        v.set_all();
        assert!((v.fill_ratio() - 1.0).abs() < 1e-12);
        let e = BitVec::new(0);
        assert_eq!(e.fill_ratio(), 0.0);
        assert!(e.is_empty());
    }

    proptest! {
        #[test]
        fn prop_demorgan(idxs in proptest::collection::vec(0usize..256, 0..64),
                         jdxs in proptest::collection::vec(0usize..256, 0..64)) {
            let mut a = BitVec::new(256);
            let mut b = BitVec::new(256);
            for i in idxs { a.set(i); }
            for j in jdxs { b.set(j); }
            // !(a | b) == !a & !b
            prop_assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
            // !(a & b) == !a | !b
            prop_assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        }

        #[test]
        fn prop_popcount_identities(idxs in proptest::collection::vec(0usize..300, 0..128),
                                    jdxs in proptest::collection::vec(0usize..300, 0..128)) {
            let mut a = BitVec::new(300);
            let mut b = BitVec::new(300);
            for i in idxs { a.set(i); }
            for j in jdxs { b.set(j); }
            // |a ^ b| = |a| + |b| - 2|a & b|
            let lhs = i64::from(a.xor_popcount(&b));
            let rhs = i64::from(a.count_ones()) + i64::from(b.count_ones())
                - 2 * i64::from(a.and_popcount(&b));
            prop_assert_eq!(lhs, rhs);
            // |a & !b| + |a & b| = |a|
            prop_assert_eq!(a.and_not(&b).count_ones() + a.and_popcount(&b), a.count_ones());
            // fused variants agree with their allocating counterparts
            prop_assert_eq!(a.and_not_popcount(&b), a.and_not(&b).count_ones());
            let mut out = BitVec::new(300);
            out.set_all(); // stale scratch contents must be overwritten
            a.and_not_into(&b, &mut out);
            prop_assert_eq!(out, a.and_not(&b));
        }

        #[test]
        fn prop_iter_ones_roundtrip(idxs in proptest::collection::vec(0usize..512, 0..100)) {
            let mut v = BitVec::new(512);
            let mut expect: Vec<usize> = idxs.clone();
            for i in idxs { v.set(i); }
            expect.sort_unstable();
            expect.dedup();
            let got: Vec<usize> = v.iter_ones().collect();
            prop_assert_eq!(got, expect);
        }
    }
}
