//! Fixed-width bitvector with word-parallel bulk operations.

use serde::{Deserialize, Serialize};

const WORD_BITS: usize = 64;

/// Number of `u64` words processed per unrolled chunk by the fused
/// popcount kernels. Four independent accumulator lanes keep the loop
/// free of a single serial dependency chain, which lets the
/// autovectorizer emit 256-bit loads and parallel `popcnt`s.
const LANES: usize = 4;

/// The word-wise combining operation of a fused popcount. A closed enum
/// (rather than a closure parameter) gives the optional SIMD backend one
/// concrete kernel per operation and keeps dispatch branch-free inside
/// the chunk loop after hoisting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FusedOp {
    /// `a & b` — overlap weight.
    And,
    /// `a & !b` — RBV / destroyed-lines weight.
    AndNot,
    /// `a ^ b` — symbiosis metric.
    Xor,
}

impl FusedOp {
    #[inline(always)]
    fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            FusedOp::And => a & b,
            FusedOp::AndNot => a & !b,
            FusedOp::Xor => a ^ b,
        }
    }
}

/// Portable chunked kernel: fold `op` over paired words in [`LANES`]
/// independent accumulator lanes, then sum lanes and the tail. This is
/// the single scalar reference the SIMD path is differentially tested
/// against; both slices must have equal length.
#[inline(always)]
fn fused_popcount_scalar(a: &[u64], b: &[u64], op: FusedOp) -> u64 {
    debug_assert_eq!(a.len(), b.len());
    let mut lanes = [0u64; LANES];
    let split = a.len() - a.len() % LANES;
    for (qa, qb) in a[..split]
        .chunks_exact(LANES)
        .zip(b[..split].chunks_exact(LANES))
    {
        for i in 0..LANES {
            lanes[i] += u64::from(op.apply(qa[i], qb[i]).count_ones());
        }
    }
    let mut tail = 0u64;
    for (&x, &y) in a[split..].iter().zip(&b[split..]) {
        tail += u64::from(op.apply(x, y).count_ones());
    }
    lanes.into_iter().sum::<u64>() + tail
}

/// Widened single-operand popcount with the same lane layout.
#[inline(always)]
fn popcount_words(words: &[u64]) -> u64 {
    let mut lanes = [0u64; LANES];
    let split = words.len() - words.len() % LANES;
    for q in words[..split].chunks_exact(LANES) {
        for i in 0..LANES {
            lanes[i] += u64::from(q[i].count_ones());
        }
    }
    let tail: u64 = words[split..]
        .iter()
        .map(|w| u64::from(w.count_ones()))
        .sum();
    lanes.into_iter().sum::<u64>() + tail
}

/// Fused popcount entry point: runtime-dispatch to the AVX2 kernel when
/// the `simd` feature is enabled and the CPU supports it, otherwise the
/// portable chunked kernel (which `target-cpu=native` autovectorizes).
#[inline]
fn fused_popcount(a: &[u64], b: &[u64], op: FusedOp) -> u64 {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 availability checked at runtime immediately above.
            return unsafe { simd::fused_popcount_avx2(a, b, op) };
        }
    }
    fused_popcount_scalar(a, b, op)
}

/// Explicit AVX2 backend (feature `simd`): 256-bit `AND`/`ANDNOT`/`XOR`
/// plus the nibble-LUT popcount (Muła's algorithm) accumulated with
/// `vpsadbw`. Falls back to [`fused_popcount_scalar`] for the < 4-word
/// tail, so any vector width is handled.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod simd {
    use super::FusedOp;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must ensure the CPU supports AVX2.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn fused_popcount_avx2(a: &[u64], b: &[u64], op: FusedOp) -> u64 {
        debug_assert_eq!(a.len(), b.len());
        let split = a.len() - a.len() % 4;
        // Nibble popcount lookup table, replicated across both 128-bit halves.
        let lut = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, //
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let mut acc = _mm256_setzero_si256();
        for i in (0..split).step_by(4) {
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(i).cast());
            let v = match op {
                FusedOp::And => _mm256_and_si256(va, vb),
                // `vpandn` computes `!x & y`, so pass the mask first.
                FusedOp::AndNot => _mm256_andnot_si256(vb, va),
                FusedOp::Xor => _mm256_xor_si256(va, vb),
            };
            let lo = _mm256_and_si256(v, low_mask);
            let hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
            let cnt = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo), _mm256_shuffle_epi8(lut, hi));
            acc = _mm256_add_epi64(acc, _mm256_sad_epu8(cnt, _mm256_setzero_si256()));
        }
        let mut lanes = [0u64; 4];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), acc);
        lanes.into_iter().sum::<u64>() + super::fused_popcount_scalar(&a[split..], &b[split..], op)
    }
}

/// A fixed-width bitvector backed by `u64` words.
///
/// This models the hardware bit arrays of the signature unit (Core Filter,
/// Last Filter, Running Bit Vector). The width is fixed at construction; all
/// binary operations require both operands to have the same width and panic
/// otherwise — mismatched filter widths would be a wiring bug in hardware,
/// so we treat them as a programming error rather than an `Err`.
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec[{}; ones={}]", self.len, self.count_ones())
    }
}

impl BitVec {
    /// Create an all-zero bitvector of `len` bits.
    pub fn new(len: usize) -> Self {
        let n_words = len.div_ceil(WORD_BITS);
        BitVec {
            len,
            words: vec![0; n_words],
        }
    }

    /// Number of bits in the vector.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the vector has zero width.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mask for the partially-used last word (all ones when the width is a
    /// multiple of 64).
    #[inline]
    fn tail_mask(&self) -> u64 {
        let rem = self.len % WORD_BITS;
        if rem == 0 {
            u64::MAX
        } else {
            (1u64 << rem) - 1
        }
    }

    /// Set bit `idx` to one. Panics if out of range.
    #[inline]
    pub fn set(&mut self, idx: usize) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / WORD_BITS] |= 1u64 << (idx % WORD_BITS);
    }

    /// Clear bit `idx` to zero. Panics if out of range.
    #[inline]
    pub fn clear(&mut self, idx: usize) {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        self.words[idx / WORD_BITS] &= !(1u64 << (idx % WORD_BITS));
    }

    /// Read bit `idx`. Panics if out of range.
    #[inline]
    pub fn get(&self, idx: usize) -> bool {
        assert!(idx < self.len, "bit index {idx} out of range {}", self.len);
        (self.words[idx / WORD_BITS] >> (idx % WORD_BITS)) & 1 == 1
    }

    /// Set every bit to zero.
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Set every bit to one.
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        let mask = self.tail_mask();
        if let Some(last) = self.words.last_mut() {
            *last &= mask;
        }
    }

    /// Number of one bits (the paper's *occupancy weight* when applied to an
    /// RBV). The sum is accumulated in `u64` and saturates on return, so
    /// vectors wider than `u32::MAX` bits cannot wrap.
    pub fn count_ones(&self) -> u32 {
        u32::try_from(popcount_words(&self.words)).unwrap_or(u32::MAX)
    }

    /// Fraction of bits set, in `[0, 1]`. Zero-width vectors report 0.
    pub fn fill_ratio(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            popcount_words(&self.words) as f64 / self.len as f64
        }
    }

    /// True if every bit is set — a *saturated* filter conveys no footprint
    /// information (the paper's argument against presence bits and multiple
    /// hash functions).
    pub fn is_saturated(&self) -> bool {
        popcount_words(&self.words) == self.len as u64
    }

    fn assert_same_width(&self, other: &BitVec) {
        assert_eq!(
            self.len, other.len,
            "bitvector width mismatch: {} vs {}",
            self.len, other.len
        );
    }

    /// `self & other`, producing a new vector.
    pub fn and(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other);
        BitVec {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// `self | other`, producing a new vector.
    pub fn or(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other);
        BitVec {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// `self ^ other`, producing a new vector.
    pub fn xor(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other);
        BitVec {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a ^ b)
                .collect(),
        }
    }

    /// `self & !other` — the paper's Running Bit Vector construction:
    /// `RBV = ¬(CF → LF) = CF ∧ ¬LF` selects the bits set since the last
    /// snapshot.
    pub fn and_not(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other);
        BitVec {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & !b)
                .collect(),
        }
    }

    /// `self & !other` written into `out` (same widths required) — the
    /// allocation-free RBV construction for hot paths that reuse a scratch
    /// vector across context switches.
    pub fn and_not_into(&self, other: &BitVec, out: &mut BitVec) {
        self.assert_same_width(other);
        self.assert_same_width(out);
        for ((o, a), b) in out.words.iter_mut().zip(&self.words).zip(&other.words) {
            *o = a & !b;
        }
    }

    /// `popcount(self & !other)` without materialising the intermediate
    /// vector (e.g. destroyed-predecessor-lines weight `|LF & !CF|`).
    #[inline]
    pub fn and_not_popcount(&self, other: &BitVec) -> u32 {
        self.assert_same_width(other);
        fused_popcount(&self.words, &other.words, FusedOp::AndNot) as u32
    }

    /// Logical implication `self → other` (i.e. `!self | other`), masked to
    /// the vector width. Provided because the paper phrases the RBV as the
    /// inverse of this operation.
    pub fn implies(&self, other: &BitVec) -> BitVec {
        self.assert_same_width(other);
        let mask = self.tail_mask();
        let n = self.words.len();
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .enumerate()
            .map(|(i, (a, b))| {
                let w = !a | b;
                if i + 1 == n {
                    w & mask
                } else {
                    w
                }
            })
            .collect();
        BitVec {
            len: self.len,
            words,
        }
    }

    /// Bitwise NOT, masked to the vector width.
    pub fn not(&self) -> BitVec {
        let mask = self.tail_mask();
        let n = self.words.len();
        let words = self
            .words
            .iter()
            .enumerate()
            .map(|(i, w)| {
                let v = !w;
                if i + 1 == n {
                    v & mask
                } else {
                    v
                }
            })
            .collect();
        BitVec {
            len: self.len,
            words,
        }
    }

    /// `popcount(self ^ other)` without materialising the intermediate
    /// vector — this is the paper's *symbiosis* metric between an RBV and a
    /// Core Filter (hardware: a tree of XOR gates feeding an adder).
    #[inline]
    pub fn xor_popcount(&self, other: &BitVec) -> u32 {
        self.assert_same_width(other);
        fused_popcount(&self.words, &other.words, FusedOp::Xor) as u32
    }

    /// `popcount(self & other)` without materialising the intermediate
    /// vector (overlap weight between two footprints).
    #[inline]
    pub fn and_popcount(&self, other: &BitVec) -> u32 {
        self.assert_same_width(other);
        fused_popcount(&self.words, &other.words, FusedOp::And) as u32
    }

    /// In-place `self |= other`.
    pub fn or_assign(&mut self, other: &BitVec) {
        self.assert_same_width(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Copy `other` into `self` (same width required). This is the hardware
    /// snapshot `LF ← CF` performed at a context switch.
    pub fn copy_from(&mut self, other: &BitVec) {
        self.assert_same_width(other);
        self.words.copy_from_slice(&other.words);
    }

    /// Iterator over the indices of set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let tz = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * WORD_BITS + tz)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_is_all_zero() {
        let v = BitVec::new(130);
        assert_eq!(v.len(), 130);
        assert_eq!(v.count_ones(), 0);
        assert!(!v.get(0));
        assert!(!v.get(129));
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut v = BitVec::new(200);
        for idx in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            v.set(idx);
            assert!(v.get(idx), "bit {idx} should be set");
        }
        assert_eq!(v.count_ones(), 8);
        v.clear(64);
        assert!(!v.get(64));
        assert_eq!(v.count_ones(), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_out_of_range_panics() {
        let mut v = BitVec::new(10);
        v.set(10);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn width_mismatch_panics() {
        let a = BitVec::new(10);
        let b = BitVec::new(11);
        let _ = a.and(&b);
    }

    #[test]
    fn set_all_respects_tail() {
        let mut v = BitVec::new(70);
        v.set_all();
        assert_eq!(v.count_ones(), 70);
        assert!(v.is_saturated());
        // NOT of all-ones must be all zero (tail masked correctly).
        assert_eq!(v.not().count_ones(), 0);
    }

    #[test]
    fn and_not_is_rbv_semantics() {
        // CF has bits {1,2,3}; LF (snapshot) has {1}; RBV must be {2,3}.
        let mut cf = BitVec::new(8);
        let mut lf = BitVec::new(8);
        cf.set(1);
        cf.set(2);
        cf.set(3);
        lf.set(1);
        let rbv = cf.and_not(&lf);
        assert!(!rbv.get(1));
        assert!(rbv.get(2));
        assert!(rbv.get(3));
        assert_eq!(rbv.count_ones(), 2);
    }

    #[test]
    fn rbv_equals_not_implies() {
        // The paper defines RBV = ¬(CF → LF); verify equivalence with and_not.
        let mut cf = BitVec::new(67);
        let mut lf = BitVec::new(67);
        for i in (0..67).step_by(3) {
            cf.set(i);
        }
        for i in (0..67).step_by(6) {
            lf.set(i);
        }
        assert_eq!(cf.and_not(&lf), cf.implies(&lf).not());
    }

    #[test]
    fn xor_popcount_matches_xor_then_count() {
        let mut a = BitVec::new(100);
        let mut b = BitVec::new(100);
        for i in (0..100).step_by(2) {
            a.set(i);
        }
        for i in (0..100).step_by(5) {
            b.set(i);
        }
        assert_eq!(a.xor_popcount(&b), a.xor(&b).count_ones());
    }

    #[test]
    fn iter_ones_ascending() {
        let mut v = BitVec::new(150);
        let idxs = [3usize, 64, 65, 100, 149];
        for &i in &idxs {
            v.set(i);
        }
        let got: Vec<usize> = v.iter_ones().collect();
        assert_eq!(got, idxs);
    }

    #[test]
    fn copy_from_snapshots() {
        let mut cf = BitVec::new(32);
        cf.set(5);
        let mut lf = BitVec::new(32);
        lf.copy_from(&cf);
        assert!(lf.get(5));
        cf.set(6);
        assert!(!lf.get(6), "snapshot must not alias the source");
    }

    #[test]
    fn fill_ratio_bounds() {
        let mut v = BitVec::new(10);
        assert_eq!(v.fill_ratio(), 0.0);
        v.set_all();
        assert!((v.fill_ratio() - 1.0).abs() < 1e-12);
        let e = BitVec::new(0);
        assert_eq!(e.fill_ratio(), 0.0);
        assert!(e.is_empty());
    }

    /// Naive un-chunked reference the kernels are differentially tested
    /// against.
    fn naive_fused(a: &[u64], b: &[u64], op: FusedOp) -> u64 {
        a.iter()
            .zip(b)
            .map(|(&x, &y)| u64::from(op.apply(x, y).count_ones()))
            .sum()
    }

    /// Differential pin: the dispatching kernel (AVX2 when the `simd`
    /// feature is on and the CPU has it, scalar otherwise) and the scalar
    /// reference must agree on boundary word counts — empty, sub-chunk,
    /// exact multiples of the 4-word chunk, and off-by-one around them.
    #[test]
    fn fused_kernels_match_scalar_reference_on_boundaries() {
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for words in [0usize, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 63, 64, 65, 129] {
            let a: Vec<u64> = (0..words).map(|_| next()).collect();
            let b: Vec<u64> = (0..words).map(|_| next()).collect();
            for op in [FusedOp::And, FusedOp::AndNot, FusedOp::Xor] {
                let want = naive_fused(&a, &b, op);
                assert_eq!(
                    fused_popcount_scalar(&a, &b, op),
                    want,
                    "scalar kernel, {op:?} over {words} words"
                );
                assert_eq!(
                    fused_popcount(&a, &b, op),
                    want,
                    "dispatched kernel, {op:?} over {words} words"
                );
            }
            let want: u64 = a.iter().map(|w| u64::from(w.count_ones())).sum();
            assert_eq!(popcount_words(&a), want, "popcount over {words} words");
        }
    }

    /// With the `simd` feature on, pin the AVX2 backend against the scalar
    /// kernel directly (not just through the dispatcher).
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    #[test]
    fn avx2_backend_matches_scalar_kernel() {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return; // scalar fallback host: nothing to differentiate
        }
        let mut state = 0xD1B5_4A32_D192_ED03u64;
        let mut next = move || {
            state = state
                .wrapping_mul(0x5851_F42D_4C95_7F2D)
                .wrapping_add(0x14057B7EF767814F);
            state
        };
        for words in [1usize, 3, 4, 6, 8, 31, 32, 33, 100, 257] {
            let a: Vec<u64> = (0..words).map(|_| next()).collect();
            let b: Vec<u64> = (0..words).map(|_| next()).collect();
            for op in [FusedOp::And, FusedOp::AndNot, FusedOp::Xor] {
                // SAFETY: AVX2 presence checked above.
                let got = unsafe { simd::fused_popcount_avx2(&a, &b, op) };
                assert_eq!(got, fused_popcount_scalar(&a, &b, op), "{op:?}/{words}");
            }
        }
    }

    proptest! {
        #[test]
        fn prop_fused_kernels_match_naive(a in proptest::collection::vec(any::<u64>(), 0..40),
                                          b in proptest::collection::vec(any::<u64>(), 0..40)) {
            let n = a.len().min(b.len());
            let (a, b) = (&a[..n], &b[..n]);
            for op in [FusedOp::And, FusedOp::AndNot, FusedOp::Xor] {
                prop_assert_eq!(fused_popcount(a, b, op), naive_fused(a, b, op));
            }
        }

        #[test]
        fn prop_demorgan(idxs in proptest::collection::vec(0usize..256, 0..64),
                         jdxs in proptest::collection::vec(0usize..256, 0..64)) {
            let mut a = BitVec::new(256);
            let mut b = BitVec::new(256);
            for i in idxs { a.set(i); }
            for j in jdxs { b.set(j); }
            // !(a | b) == !a & !b
            prop_assert_eq!(a.or(&b).not(), a.not().and(&b.not()));
            // !(a & b) == !a | !b
            prop_assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        }

        #[test]
        fn prop_popcount_identities(idxs in proptest::collection::vec(0usize..300, 0..128),
                                    jdxs in proptest::collection::vec(0usize..300, 0..128)) {
            let mut a = BitVec::new(300);
            let mut b = BitVec::new(300);
            for i in idxs { a.set(i); }
            for j in jdxs { b.set(j); }
            // |a ^ b| = |a| + |b| - 2|a & b|
            let lhs = i64::from(a.xor_popcount(&b));
            let rhs = i64::from(a.count_ones()) + i64::from(b.count_ones())
                - 2 * i64::from(a.and_popcount(&b));
            prop_assert_eq!(lhs, rhs);
            // |a & !b| + |a & b| = |a|
            prop_assert_eq!(a.and_not(&b).count_ones() + a.and_popcount(&b), a.count_ones());
            // fused variants agree with their allocating counterparts
            prop_assert_eq!(a.and_not_popcount(&b), a.and_not(&b).count_ones());
            let mut out = BitVec::new(300);
            out.set_all(); // stale scratch contents must be overwritten
            a.and_not_into(&b, &mut out);
            prop_assert_eq!(out, a.and_not(&b));
        }

        #[test]
        fn prop_iter_ones_roundtrip(idxs in proptest::collection::vec(0usize..512, 0..100)) {
            let mut v = BitVec::new(512);
            let mut expect: Vec<usize> = idxs.clone();
            for i in idxs { v.set(i); }
            expect.sort_unstable();
            expect.dedup();
            let got: Vec<usize> = v.iter_ones().collect();
            prop_assert_eq!(got, expect);
        }
    }
}
