//! Integration: the measurement memo-cache is transparent (byte-identical
//! sweep output) and actually saves machine simulations on the Figure-13
//! multi-policy comparison path.

use std::sync::Arc;
use symbio::prelude::*;

fn small_pool() -> Vec<WorkloadSpec> {
    let l2 = 256 << 10;
    ["mcf", "povray", "gobmk", "libquantum", "gcc"]
        .iter()
        .map(|n| {
            let mut s = spec2006::by_name(n, l2).unwrap();
            s.work /= 8;
            s
        })
        .collect()
}

#[test]
fn memoized_sweep_outcome_is_byte_identical() {
    let cfg = ExperimentConfig::fast(777);
    let opts = SweepOptions {
        mix_size: 4,
        stride: 1,
        threads: 2,
    };
    let pool = small_pool();
    let make = || Box::new(WeightSortPolicy) as Box<dyn AllocationPolicy>;

    let plain = SweepEngine::new(cfg)
        .options(opts)
        .run_pool(&pool, &make)
        .unwrap()
        .expect("uncancelled");
    let engine = SweepEngine::new(cfg).options(opts).memoized();
    let cached = engine.run_pool(&pool, &make).unwrap().expect("uncancelled");
    assert!(
        engine.counters().snapshot().memo_misses > 0,
        "the cache must actually have been consulted"
    );

    let a = serde_json::to_string(&plain).unwrap();
    let b = serde_json::to_string(&cached).unwrap();
    assert_eq!(a, b, "memoization must not change a single output byte");
}

#[test]
fn shared_cache_saves_simulations_across_policies() {
    // The Figure-13 path: several allocation policies evaluated on the
    // same mix. Phase-2 measurements depend only on (specs, mapping), so a
    // shared cache must collapse them across policies.
    let cfg = ExperimentConfig::fast(1234);
    let l2 = cfg.machine.l2.size_bytes;
    let mut specs: Vec<WorkloadSpec> = Vec::new();
    for n in ["mcf", "omnetpp", "povray", "sjeng"] {
        let mut s = spec2006::by_name(n, l2).unwrap();
        s.work /= 4;
        specs.push(s);
    }
    type Factory = fn() -> Box<dyn AllocationPolicy>;
    let factories: Vec<Factory> = vec![
        || Box::new(WeightSortPolicy),
        || Box::new(WeightedInterferenceGraphPolicy::default()),
        || Box::new(MissRateSortPolicy),
    ];

    // Baseline: each policy on its own un-memoized pipeline.
    let mut baseline_sims = Vec::new();
    let mut baseline_results = Vec::new();
    for make in &factories {
        let pipeline = Pipeline::new(cfg);
        let mut p = make();
        let r = pipeline.evaluate_mix(&specs, p.as_mut()).unwrap();
        baseline_sims.push(pipeline.counters().snapshot().sim_runs);
        baseline_results.push(r);
    }
    let single = baseline_sims[0];
    assert!(single > 0);

    // Shared-cache run: one memoized pipeline for all three policies.
    let cache = Arc::new(MeasureCache::new());
    let pipeline = Pipeline::new(cfg).with_memo(Arc::clone(&cache));
    let mut shared_results = Vec::new();
    for make in &factories {
        let mut p = make();
        shared_results.push(pipeline.evaluate_mix(&specs, p.as_mut()).unwrap());
    }
    let shared = pipeline.counters().snapshot().sim_runs;

    assert!(cache.hits() > 0, "repeat measurements must hit the cache");
    assert!(
        shared < 3 * single,
        "3 policies with a shared cache must simulate strictly less than \
         3x a single-policy run ({shared} vs 3x{single})"
    );

    // Memoization must not perturb any decision or measurement.
    for (base, shared) in baseline_results.iter().zip(&shared_results) {
        assert_eq!(
            base.mappings[base.chosen].partition_key(2),
            shared.mappings[shared.chosen].partition_key(2),
            "chosen mapping must be unchanged by the cache"
        );
        assert_eq!(base.user_cycles, shared.user_cycles);
    }
}
