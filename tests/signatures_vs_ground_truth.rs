//! Integration: the signature unit's occupancy weight tracks the ground
//! truth footprint the cache model exposes.

use symbio::prelude::*;
use symbio_machine::Machine;

#[test]
fn occupancy_orders_processes_by_footprint() {
    let cfg = MachineConfig::scaled_core2duo(33);
    let l2 = cfg.l2.size_bytes;
    // povray (tiny) vs soplex (about an L2-worth of random lines).
    let mut m = Machine::new(cfg);
    m.add_process(&spec2006::by_name("povray", l2).unwrap());
    m.add_process(&spec2006::by_name("soplex", l2).unwrap());
    m.start(None);
    m.run_for(20_000_000);
    let views = m.query_views();
    let povray = &views[0].threads[0];
    let soplex = &views[1].threads[0];
    assert!(povray.samples > 0 && soplex.samples > 0);
    assert!(
        soplex.occupancy > povray.occupancy * 3.0,
        "soplex occupancy {} must dwarf povray {}",
        soplex.occupancy,
        povray.occupancy
    );
}

#[test]
fn global_occupancy_approximates_resident_lines() {
    let cfg = MachineConfig::scaled_core2duo(34);
    let l2 = cfg.l2.size_bytes;
    let mut m = Machine::new(cfg);
    m.add_process(&spec2006::by_name("soplex", l2).unwrap());
    m.start(None);
    m.run_for(10_000_000);
    let truth = m.memory().l2_resident_total() as f64;
    let occ = m.signature().unwrap().global_occupancy() as f64;
    // Hash collisions under-count by the birthday statistics: throwing
    // `truth` balls into `entries` bins covers entries*(1 - e^(-t/e))
    // bins. The paper calls this out as the aliasing artefact of the CBF.
    let entries = m.signature().unwrap().config().entries() as f64;
    let predicted = entries * (1.0 - (-truth / entries).exp());
    assert!(
        occ <= truth * 1.001,
        "occupancy {occ} cannot exceed residents {truth}"
    );
    assert!(
        (occ - predicted).abs() < predicted * 0.1,
        "occupancy {occ} should match the collision model ({predicted:.0})"
    );
}

#[test]
fn streaming_process_fills_its_core_filter() {
    let cfg = MachineConfig::scaled_core2duo(35);
    let l2 = cfg.l2.size_bytes;
    let mut m = Machine::new(cfg);
    m.add_process(&spec2006::by_name("libquantum", l2).unwrap());
    m.add_process(&spec2006::by_name("povray", l2).unwrap());
    m.start(None);
    m.run_for(20_000_000);
    let sig = m.signature().unwrap();
    // libquantum runs on core 0 (round robin, pid 0).
    let libq_fill = sig.core_filter(0).fill_ratio();
    let povray_fill = sig.core_filter(1).fill_ratio();
    assert!(
        libq_fill > 0.5,
        "a streaming polluter should cover most of the filter ({libq_fill})"
    );
    assert!(povray_fill < libq_fill);
}

#[test]
fn sampled_unit_sees_quarter_of_traffic() {
    let mut cfg = MachineConfig::scaled_core2duo(36);
    let l2 = cfg.l2.size_bytes;
    let full_fills = {
        let mut m = Machine::new(cfg);
        m.add_process(&spec2006::by_name("milc", l2).unwrap());
        m.start(None);
        m.run_for(10_000_000);
        m.signature().unwrap().fills()
    };
    cfg.signature = Some(symbio_machine::config::SigOptions {
        sampling: Sampling::QUARTER,
        ..symbio_machine::config::SigOptions::default_options()
    });
    let sampled_fills = {
        let mut m = Machine::new(cfg);
        m.add_process(&spec2006::by_name("milc", l2).unwrap());
        m.start(None);
        m.run_for(10_000_000);
        m.signature().unwrap().fills()
    };
    let ratio = sampled_fills as f64 / full_fills as f64;
    assert!(
        (0.15..0.40).contains(&ratio),
        "quarter sampling should observe ~25% of fills, got {ratio:.2}"
    );
}
