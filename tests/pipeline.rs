//! Integration: the full two-phase pipeline across crates.

use symbio::prelude::*;

fn small_specs(names: &[&str]) -> Vec<WorkloadSpec> {
    let l2 = 256 << 10;
    names
        .iter()
        .map(|n| {
            let mut s = spec2006::by_name(n, l2).unwrap();
            s.work /= 4;
            s
        })
        .collect()
}

#[test]
fn evaluate_mix_produces_three_measured_mappings() {
    let pipeline = Pipeline::new(ExperimentConfig::fast(17));
    let specs = small_specs(&["mcf", "povray", "libquantum", "gobmk"]);
    let mut policy = WeightedInterferenceGraphPolicy::default();
    let r = pipeline.evaluate_mix(&specs, &mut policy).unwrap();
    assert_eq!(r.mappings.len(), 3);
    assert_eq!(r.names, vec!["mcf", "povray", "libquantum", "gobmk"]);
    for row in &r.user_cycles {
        assert_eq!(row.len(), 4);
        assert!(row.iter().all(|&u| u > 0));
    }
    assert!(r.chosen < 3);
}

#[test]
fn improvements_bounded_and_consistent() {
    let pipeline = Pipeline::new(ExperimentConfig::fast(18));
    let specs = small_specs(&["bzip2", "soplex", "povray", "hmmer"]);
    let mut policy = WeightSortPolicy;
    let r = pipeline.evaluate_mix(&specs, &mut policy).unwrap();
    for pid in 0..4 {
        let imp = r.improvement_vs_worst(pid);
        assert!((0.0..=1.0).contains(&imp));
        assert!(r.best_of(pid) <= r.user_cycles[r.chosen][pid]);
        assert!(r.user_cycles[r.chosen][pid] <= r.worst_of(pid));
        assert!((0.0..=1.0).contains(&r.oracle_fraction(pid)));
    }
}

#[test]
fn profile_votes_sum_to_invocations() {
    let pipeline = Pipeline::new(ExperimentConfig::fast(19));
    let specs = small_specs(&["gcc", "milc", "omnetpp", "sjeng"]);
    let mut policy = PairwisePolicy::new();
    let prof = pipeline.profile(&specs, &mut policy);
    let total: u32 = prof.votes.iter().map(|(_, c)| c).sum();
    assert_eq!(total, prof.invocations);
    assert!(prof.invocations >= 4);
    assert_eq!(
        prof.votes[0].0.partition_key(2),
        prof.winner.partition_key(2)
    );
}

#[test]
fn different_policies_can_share_measured_candidates() {
    let pipeline = Pipeline::new(ExperimentConfig::fast(20));
    let specs = small_specs(&["astar", "gobmk", "povray", "soplex"]);
    let choice = Mapping::new(vec![0, 0, 1, 1]);
    let r = pipeline
        .evaluate_mix_with_choice(&specs, &choice, "external")
        .unwrap();
    assert_eq!(r.policy, "external");
    assert_eq!(
        r.mappings[r.chosen].partition_key(2),
        choice.partition_key(2)
    );
}

#[test]
fn vm_pipeline_runs_end_to_end() {
    let cfg = ExperimentConfig::fast(21).virtualized();
    let pipeline = Pipeline::new(cfg);
    let specs = small_specs(&["gobmk", "povray", "milc", "sjeng"]);
    let mut policy = WeightSortPolicy;
    let r = pipeline.evaluate_mix(&specs, &mut policy).unwrap();
    assert_eq!(r.mappings.len(), 3);
    let native = Pipeline::new(ExperimentConfig::fast(21));
    let rn = native
        .evaluate_mix_with_choice(&specs, &r.mappings[r.chosen], "native")
        .unwrap();
    let vm_total: u64 = r.user_cycles[r.chosen].iter().sum();
    let native_total: u64 = rn.user_cycles[r.chosen].iter().sum();
    assert!(
        vm_total > native_total,
        "VM run ({vm_total}) must cost more than native ({native_total})"
    );
}
