//! Integration: the paper's qualitative result shapes hold end-to-end.
//! These are the claims EXPERIMENTS.md reports quantitatively; here we
//! pin the directions so regressions get caught.

use symbio::prelude::*;
use symbio_machine::Machine;

const L2: u64 = 256 << 10;

fn co_run_degradation(victim: &str, aggressor: &str, seed: u64) -> f64 {
    let solo = {
        let mut m = Machine::new(MachineConfig::scaled_core2duo(seed).without_signature());
        m.add_process(&spec2006::by_name(victim, L2).unwrap());
        m.start(Some(&Mapping::new(vec![0])));
        m.run_to_completion(100_000_000_000).procs[0].user_cycles as f64
    };
    let mut m = Machine::new(MachineConfig::scaled_core2duo(seed).without_signature());
    m.add_process(&spec2006::by_name(victim, L2).unwrap());
    m.add_process(&spec2006::by_name(aggressor, L2).unwrap());
    m.start(Some(&Mapping::new(vec![0, 1])));
    let t = m.run_to_completion(100_000_000_000).procs[0].user_cycles as f64;
    t / solo - 1.0
}

#[test]
fn shared_cache_hurts_sensitive_apps_severely() {
    // Paper Figure 3(b): mcf-class programs degrade dramatically.
    assert!(co_run_degradation("mcf", "omnetpp", 42) > 0.3);
    assert!(co_run_degradation("soplex", "mcf", 42) > 0.3);
}

#[test]
fn compute_and_bandwidth_bound_apps_are_immune() {
    // Paper Section 5.1.1: povray (compute) and hmmer (bandwidth).
    assert!(co_run_degradation("povray", "mcf", 42) < 0.10);
    assert!(co_run_degradation("hmmer", "libquantum", 42) < 0.12);
}

#[test]
fn private_l2_time_sharing_is_benign() {
    // Paper Figure 3(a): < 10% on the P4 SMP control.
    let cfg = MachineConfig::scaled_p4_smp(42).without_signature();
    let l2 = cfg.l2.size_bytes;
    let solo = {
        let mut m = Machine::new(cfg);
        m.add_process(&spec2006::by_name("mcf", l2).unwrap());
        m.start(Some(&Mapping::new(vec![0])));
        m.run_to_completion(200_000_000_000).procs[0].user_cycles as f64
    };
    let mut m = Machine::new(cfg);
    m.add_process(&spec2006::by_name("mcf", l2).unwrap());
    m.add_process(&spec2006::by_name("libquantum", l2).unwrap());
    m.start(Some(&Mapping::new(vec![0, 0])));
    let t = m.run_to_completion(200_000_000_000).procs[0].user_cycles as f64;
    assert!(
        t / solo - 1.0 < 0.10,
        "same-core time sharing must stay benign, got {:.3}",
        t / solo - 1.0
    );
}

#[test]
fn literal_symbiosis_metric_is_core_placement_invariant() {
    // The degeneracy documented in DESIGN.md: from a balanced 2-core
    // placement, both cross-core pairings have identical cut weight under
    // the paper's literal metric.
    use symbio_allocator::graph::{InterferenceGraph, InterferenceMetric};
    use symbio_machine::ThreadView;
    let view = |tid: usize, sym: Vec<f64>, core: usize| ThreadView {
        tid,
        pid: tid,
        name: format!("p{tid}"),
        occupancy: 10.0 + tid as f64,
        symbiosis: sym.clone(),
        overlap: sym.iter().map(|s| 200.0 - s).collect(),
        last_occupancy: 10,
        last_core: Some(core),
        samples: 1,
        filter_len: 4096,
        l2_miss_rate: 0.1,
        l2_misses: 1,
        retired: 0,
    };
    // Arbitrary asymmetric data; a, b on core 0; x, y on core 1.
    let a = view(0, vec![10.0, 40.0], 0);
    let b = view(1, vec![20.0, 50.0], 0);
    let x = view(2, vec![60.0, 30.0], 1);
    let y = view(3, vec![70.0, 80.0], 1);
    let g =
        InterferenceGraph::unweighted(&[&a, &b, &x, &y], InterferenceMetric::ReciprocalSymbiosis);
    let w = g.weights();
    let cut_ax_by = w.get(0, 1) + w.get(2, 3) + w.get(0, 3) + w.get(1, 2);
    let cut_ay_bx = w.get(0, 1) + w.get(2, 3) + w.get(0, 2) + w.get(1, 3);
    assert!(
        (cut_ax_by - cut_ay_bx).abs() < 1e-9,
        "cross pairings tie: {cut_ax_by} vs {cut_ay_bx}"
    );
}

#[test]
fn vm_improvements_lower_but_same_direction() {
    // Paper Figure 11 vs 10: improvements shrink inside VMs but the
    // winner mapping stays beneficial. Checked on the clear-cut mix.
    let specs: Vec<WorkloadSpec> = ["mcf", "omnetpp", "povray", "sjeng"]
        .iter()
        .map(|n| spec2006::by_name(n, L2).unwrap())
        .collect();
    let grouped = Mapping::new(vec![0, 0, 1, 1]); // interferers together
    let split = Mapping::new(vec![0, 1, 0, 1]); // interferers apart
    let gain = |cfg: ExperimentConfig| {
        let p = Pipeline::new(cfg);
        let good = p.measure(&specs, &grouped).procs[0].user_cycles as f64;
        let bad = p.measure(&specs, &split).procs[0].user_cycles as f64;
        (bad - good) / bad
    };
    let native = gain(ExperimentConfig::scaled(99));
    let vm = gain(ExperimentConfig::scaled(99).virtualized());
    assert!(native > 0.05, "native gain {native:.3}");
    assert!(vm > 0.0, "vm gain still positive ({vm:.3})");
    assert!(
        vm < native,
        "vm gain ({vm:.3}) diluted vs native ({native:.3})"
    );
}
