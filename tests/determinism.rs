//! Integration: everything is reproducible from the seed.

use symbio::prelude::*;

fn specs() -> Vec<WorkloadSpec> {
    let l2 = 256 << 10;
    ["mcf", "gcc", "povray", "soplex"]
        .iter()
        .map(|n| {
            let mut s = spec2006::by_name(n, l2).unwrap();
            s.work /= 4;
            s
        })
        .collect()
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let pipeline = Pipeline::new(ExperimentConfig::fast(4242));
        let mut policy = WeightedInterferenceGraphPolicy::default();
        pipeline.evaluate_mix(&specs(), &mut policy).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.user_cycles, b.user_cycles);
    assert_eq!(a.chosen, b.chosen);
}

#[test]
fn seeds_change_outcomes() {
    let run = |seed| {
        let pipeline = Pipeline::new(ExperimentConfig::fast(seed));
        let mut policy = WeightSortPolicy;
        pipeline
            .evaluate_mix(&specs(), &mut policy)
            .unwrap()
            .user_cycles
    };
    assert_ne!(run(1), run(2));
}

#[test]
fn parallel_sweep_matches_serial() {
    let l2 = 256 << 10;
    let pool: Vec<WorkloadSpec> = ["mcf", "povray", "gobmk", "libquantum", "gcc"]
        .iter()
        .map(|n| {
            let mut s = spec2006::by_name(n, l2).unwrap();
            s.work /= 8;
            s
        })
        .collect();
    let cfg = ExperimentConfig::fast(777);
    let opts = |threads| symbio::sweep::SweepOptions {
        mix_size: 4,
        stride: 1,
        threads,
    };
    let serial = sweep_pool(cfg, &pool, &|| Box::new(WeightSortPolicy), opts(1));
    let parallel = sweep_pool(cfg, &pool, &|| Box::new(WeightSortPolicy), opts(4));
    assert_eq!(serial.results.len(), parallel.results.len());
    for (s, p) in serial.results.iter().zip(&parallel.results) {
        assert_eq!(s.user_cycles, p.user_cycles);
        assert_eq!(s.chosen, p.chosen);
    }
}
