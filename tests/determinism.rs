//! Integration: everything is reproducible from the seed.

use symbio::prelude::*;

fn specs() -> Vec<WorkloadSpec> {
    let l2 = 256 << 10;
    ["mcf", "gcc", "povray", "soplex"]
        .iter()
        .map(|n| {
            let mut s = spec2006::by_name(n, l2).unwrap();
            s.work /= 4;
            s
        })
        .collect()
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let pipeline = Pipeline::new(ExperimentConfig::fast(4242));
        let mut policy = WeightedInterferenceGraphPolicy::default();
        pipeline.evaluate_mix(&specs(), &mut policy).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.user_cycles, b.user_cycles);
    assert_eq!(a.chosen, b.chosen);
}

#[test]
fn seeds_change_outcomes() {
    let run = |seed| {
        let pipeline = Pipeline::new(ExperimentConfig::fast(seed));
        let mut policy = WeightSortPolicy;
        pipeline
            .evaluate_mix(&specs(), &mut policy)
            .unwrap()
            .user_cycles
    };
    assert_ne!(run(1), run(2));
}

// ---------------------------------------------------------------- golden

/// FNV-1a over a stream of u64s — stable, dependency-free digest.
fn fnv1a(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// The two reference machines the golden digests were captured on. The
/// topology refactor expresses both as [`Topology`] values (one shared
/// domain vs one domain per core); the digests predate the refactor, so
/// matching them proves the domain-sharded memory system is bit-identical
/// to the old single/private-L2 special cases.
#[derive(Debug, Clone, Copy)]
enum RefMachine {
    SharedL2,
    PrivateL2,
}

/// Digest every observable the kernel produces for a reference run: the
/// frontier clock, machine-wide L2 traffic, per-process user/wall cycles
/// and per-thread memory-op / L2 counters.
fn kernel_digest(machine: RefMachine, policy: ReplacementPolicy) -> u64 {
    let mut cfg = match machine {
        RefMachine::SharedL2 => MachineConfig::scaled_core2duo(0xD1CE),
        RefMachine::PrivateL2 => MachineConfig::scaled_p4_smp(0xD1CE),
    };
    cfg.policy = policy;
    let mut m = Machine::new(cfg);
    let l2 = cfg.l2.size_bytes;
    for n in ["gobmk", "hmmer", "libquantum", "povray"] {
        let mut s = spec2006::by_name(n, l2).unwrap();
        s.work /= 8;
        m.add_process(&s);
    }
    let out = m.run_to_completion(2_000_000_000);
    assert!(
        out.completed,
        "{machine:?}/{policy:?} reference run finished"
    );
    let mut stream = vec![out.wall_cycles, out.l2_accesses, out.l2_misses];
    for p in &out.procs {
        stream.push(p.pid as u64);
        stream.push(p.user_cycles);
        stream.push(p.wall_cycles);
    }
    for tid in 0..m.threads_len() {
        let t = m.thread(tid);
        stream.push(t.user_cycles);
        stream.push(t.mem_ops);
        stream.push(t.l2_accesses);
        stream.push(t.l2_misses);
    }
    stream.push(m.switches());
    fnv1a(stream)
}

/// Golden digests captured from the pre-refactor (PR 1) kernel on the
/// reference 4-benchmark mix. The flat-cache/batched-stepping kernel must
/// stay cycle-identical: any change to these values is a behavioural
/// regression, not a tuning knob.
#[test]
fn kernel_digest_matches_golden() {
    let cases = [
        (
            RefMachine::SharedL2,
            ReplacementPolicy::Lru,
            GOLDEN_SHARED_LRU,
        ),
        (
            RefMachine::SharedL2,
            ReplacementPolicy::Fifo,
            GOLDEN_SHARED_FIFO,
        ),
        (
            RefMachine::SharedL2,
            ReplacementPolicy::Random,
            GOLDEN_SHARED_RANDOM,
        ),
        (
            RefMachine::PrivateL2,
            ReplacementPolicy::Lru,
            GOLDEN_PRIVATE_LRU,
        ),
        (
            RefMachine::PrivateL2,
            ReplacementPolicy::Fifo,
            GOLDEN_PRIVATE_FIFO,
        ),
        (
            RefMachine::PrivateL2,
            ReplacementPolicy::Random,
            GOLDEN_PRIVATE_RANDOM,
        ),
    ];
    for (machine, policy, golden) in cases {
        let got = kernel_digest(machine, policy);
        assert_eq!(
            got, golden,
            "kernel digest drifted for {machine:?}/{policy:?}: \
             got {got:#018x}, golden {golden:#018x}"
        );
    }
}

const GOLDEN_SHARED_LRU: u64 = 0x5824d883bbc8a019;
const GOLDEN_SHARED_FIFO: u64 = 0xeb57fa7d8dbf1716;
const GOLDEN_SHARED_RANDOM: u64 = 0x342b170ef926cb92;
const GOLDEN_PRIVATE_LRU: u64 = 0xb03f55240a801417;
const GOLDEN_PRIVATE_FIFO: u64 = 0x8ea2bace247dd30d;
const GOLDEN_PRIVATE_RANDOM: u64 = 0xefad19879a088bbd;

#[test]
fn parallel_sweep_matches_serial() {
    let l2 = 256 << 10;
    let pool: Vec<WorkloadSpec> = ["mcf", "povray", "gobmk", "libquantum", "gcc"]
        .iter()
        .map(|n| {
            let mut s = spec2006::by_name(n, l2).unwrap();
            s.work /= 8;
            s
        })
        .collect();
    let cfg = ExperimentConfig::fast(777);
    let opts = |threads| symbio::sweep::SweepOptions {
        mix_size: 4,
        stride: 1,
        threads,
    };
    let serial = sweep_pool(cfg, &pool, &|| Box::new(WeightSortPolicy), opts(1));
    let parallel = sweep_pool(cfg, &pool, &|| Box::new(WeightSortPolicy), opts(4));
    assert_eq!(serial.results.len(), parallel.results.len());
    for (s, p) in serial.results.iter().zip(&parallel.results) {
        assert_eq!(s.user_cycles, p.user_cycles);
        assert_eq!(s.chosen, p.chosen);
    }
}
