//! Integration: everything is reproducible from the seed.

use proptest::prelude::*;
use symbio::prelude::*;

fn specs() -> Vec<WorkloadSpec> {
    let l2 = 256 << 10;
    ["mcf", "gcc", "povray", "soplex"]
        .iter()
        .map(|n| {
            let mut s = spec2006::by_name(n, l2).unwrap();
            s.work /= 4;
            s
        })
        .collect()
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run = || {
        let pipeline = Pipeline::new(ExperimentConfig::fast(4242));
        let mut policy = WeightedInterferenceGraphPolicy::default();
        pipeline.evaluate_mix(&specs(), &mut policy).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.user_cycles, b.user_cycles);
    assert_eq!(a.chosen, b.chosen);
}

#[test]
fn seeds_change_outcomes() {
    let run = |seed| {
        let pipeline = Pipeline::new(ExperimentConfig::fast(seed));
        let mut policy = WeightSortPolicy;
        pipeline
            .evaluate_mix(&specs(), &mut policy)
            .unwrap()
            .user_cycles
    };
    assert_ne!(run(1), run(2));
}

// ---------------------------------------------------------------- golden

/// FNV-1a over a stream of u64s — stable, dependency-free digest.
fn fnv1a(values: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for v in values {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

/// The two reference machines the golden digests were captured on. The
/// topology refactor expresses both as [`Topology`] values (one shared
/// domain vs one domain per core); the digests predate the refactor, so
/// matching them proves the domain-sharded memory system is bit-identical
/// to the old single/private-L2 special cases.
#[derive(Debug, Clone, Copy)]
enum RefMachine {
    SharedL2,
    PrivateL2,
}

/// Digest every observable the kernel produces for a reference run: the
/// frontier clock, machine-wide L2 traffic, per-process user/wall cycles
/// and per-thread memory-op / L2 counters.
fn kernel_digest(machine: RefMachine, policy: ReplacementPolicy) -> u64 {
    kernel_digest_threads(machine, policy, 1)
}

/// [`kernel_digest`] with an explicit engine selection
/// (`MachineConfig::step_threads`; 1 = the serial legacy engine).
fn kernel_digest_threads(machine: RefMachine, policy: ReplacementPolicy, threads: usize) -> u64 {
    let mut cfg = match machine {
        RefMachine::SharedL2 => MachineConfig::scaled_core2duo(0xD1CE),
        RefMachine::PrivateL2 => MachineConfig::scaled_p4_smp(0xD1CE),
    };
    cfg.policy = policy;
    cfg.step_threads = threads;
    let mut m = Machine::new(cfg);
    let l2 = cfg.l2.size_bytes;
    for n in ["gobmk", "hmmer", "libquantum", "povray"] {
        let mut s = spec2006::by_name(n, l2).unwrap();
        s.work /= 8;
        m.add_process(&s);
    }
    let out = m.run_to_completion(2_000_000_000);
    assert!(
        out.completed,
        "{machine:?}/{policy:?} reference run finished"
    );
    let mut stream = vec![out.wall_cycles, out.l2_accesses, out.l2_misses];
    for p in &out.procs {
        stream.push(p.pid as u64);
        stream.push(p.user_cycles);
        stream.push(p.wall_cycles);
    }
    for tid in 0..m.threads_len() {
        let t = m.thread(tid);
        stream.push(t.user_cycles);
        stream.push(t.mem_ops);
        stream.push(t.l2_accesses);
        stream.push(t.l2_misses);
    }
    stream.push(m.switches());
    fnv1a(stream)
}

/// Golden digests captured from the pre-refactor (PR 1) kernel on the
/// reference 4-benchmark mix. The flat-cache/batched-stepping kernel must
/// stay cycle-identical: any change to these values is a behavioural
/// regression, not a tuning knob.
#[test]
fn kernel_digest_matches_golden() {
    let cases = [
        (
            RefMachine::SharedL2,
            ReplacementPolicy::Lru,
            GOLDEN_SHARED_LRU,
        ),
        (
            RefMachine::SharedL2,
            ReplacementPolicy::Fifo,
            GOLDEN_SHARED_FIFO,
        ),
        (
            RefMachine::SharedL2,
            ReplacementPolicy::Random,
            GOLDEN_SHARED_RANDOM,
        ),
        (
            RefMachine::PrivateL2,
            ReplacementPolicy::Lru,
            GOLDEN_PRIVATE_LRU,
        ),
        (
            RefMachine::PrivateL2,
            ReplacementPolicy::Fifo,
            GOLDEN_PRIVATE_FIFO,
        ),
        (
            RefMachine::PrivateL2,
            ReplacementPolicy::Random,
            GOLDEN_PRIVATE_RANDOM,
        ),
    ];
    for (machine, policy, golden) in cases {
        let got = kernel_digest(machine, policy);
        assert_eq!(
            got, golden,
            "kernel digest drifted for {machine:?}/{policy:?}: \
             got {got:#018x}, golden {golden:#018x}"
        );
    }
}

const GOLDEN_SHARED_LRU: u64 = 0x5824d883bbc8a019;
const GOLDEN_SHARED_FIFO: u64 = 0xeb57fa7d8dbf1716;
const GOLDEN_SHARED_RANDOM: u64 = 0x342b170ef926cb92;
const GOLDEN_PRIVATE_LRU: u64 = 0xb03f55240a801417;
const GOLDEN_PRIVATE_FIFO: u64 = 0x8ea2bace247dd30d;
const GOLDEN_PRIVATE_RANDOM: u64 = 0xefad19879a088bbd;

// ------------------------------------------------- decomposed engine

/// Pinned digest of the decomposed (parallel) engine on the private-L2
/// reference machine at LRU. The decomposed engine gives every cache
/// domain its own jitter stream, so multi-domain machines legitimately
/// diverge from the serial golden — this constant pins that output
/// instead, and must be identical for every worker count `>= 2`.
const GOLDEN_PRIVATE_DECOMPOSED_LRU: u64 = 0x440e6e0f3b51b471;

/// Worker count for the decomposed golden run: `SYMBIO_STEP_THREADS` if
/// set (the CI bench-smoke leg runs the suite at 4), else 2.
fn env_step_threads() -> usize {
    std::env::var("SYMBIO_STEP_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t >= 2)
        .unwrap_or(2)
}

/// A single-domain machine has one lane, so the decomposed engine is the
/// serial engine with extra bookkeeping: the shared-L2 golden digest must
/// hold verbatim at any worker count.
#[test]
fn decomposed_single_domain_matches_serial_golden() {
    let got = kernel_digest_threads(
        RefMachine::SharedL2,
        ReplacementPolicy::Lru,
        env_step_threads(),
    );
    assert_eq!(
        got, GOLDEN_SHARED_LRU,
        "decomposed single-domain digest drifted from the serial golden"
    );
}

/// Multi-domain decomposed output is pinned separately (per-domain jitter
/// streams) and must not depend on the worker count.
#[test]
fn decomposed_multi_domain_digest_is_pinned() {
    let got = kernel_digest_threads(
        RefMachine::PrivateL2,
        ReplacementPolicy::Lru,
        env_step_threads(),
    );
    assert_eq!(
        got, GOLDEN_PRIVATE_DECOMPOSED_LRU,
        "decomposed private-L2 digest drifted: got {got:#018x}"
    );
}

// --------------------------------------- parallel stepping equivalence

/// Digest every observable of a profiling-style run on `cfg`: three
/// stepped intervals, the exported [`SigSnapshot`] after each (occupancy,
/// symbiosis and overlap vectors down to f64 bit patterns), and the
/// machine's final stats. `par_domain_steps` is deliberately excluded —
/// it counts engine-internal batches, not simulated behaviour.
fn stepped_digest(cfg: MachineConfig) -> u64 {
    let mut m = Machine::new(cfg);
    let names = ["gobmk", "hmmer", "libquantum", "povray"];
    for i in 0..cfg.cores {
        let mut s = spec2006::by_name(names[i % names.len()], cfg.l2.size_bytes).unwrap();
        s.work /= 8;
        m.add_process(&s);
    }
    m.start(None);
    let mut stream = Vec::new();
    for seq in 0..3u64 {
        m.run_for(150_000);
        let snap = m.export_snapshot("prop", seq).unwrap();
        stream.extend([snap.seq, snap.now_cycles, snap.cores as u64]);
        stream.extend(snap.domains.iter().map(|&d| d as u64));
        for t in snap.threads() {
            stream.extend([
                t.tid as u64,
                t.pid as u64,
                t.occupancy.to_bits(),
                u64::from(t.last_occupancy),
                t.last_core.map_or(u64::MAX, |c| c as u64),
                t.samples,
                t.filter_len as u64,
                t.l2_misses,
                t.retired,
            ]);
            stream.extend(t.symbiosis.iter().map(|s| s.to_bits()));
            stream.extend(t.overlap.iter().map(|s| s.to_bits()));
        }
    }
    stream.push(m.now());
    stream.push(m.switches());
    for tid in 0..m.threads_len() {
        let t = m.thread(tid);
        stream.extend([t.user_cycles, t.mem_ops, t.l2_accesses, t.l2_misses]);
    }
    fnv1a(stream)
}

proptest! {
    /// The decomposed engine's output depends only on the domain
    /// decomposition, never on the worker count — and collapses to the
    /// serial engine exactly when there is a single domain (multi-domain
    /// serial runs share one jitter stream, so they are pinned separately
    /// by [`decomposed_multi_domain_digest_is_pinned`]).
    #[test]
    fn parallel_stepping_is_worker_count_invariant(
        domains in 1usize..9,
        cores_per_domain in 1usize..3,
        seed in 0u64..1_000_000,
    ) {
        let mut cfg = MachineConfig::scaled_core2duo(seed);
        cfg.cores = domains * cores_per_domain;
        cfg.topology = Topology::uniform(domains, cores_per_domain);
        let digest_at = |threads: usize| {
            let mut c = cfg;
            c.step_threads = threads;
            stepped_digest(c)
        };
        let d2 = digest_at(2);
        prop_assert_eq!(d2, digest_at(4));
        if domains == 1 {
            prop_assert_eq!(digest_at(1), d2);
        }
    }
}

#[test]
fn parallel_sweep_matches_serial() {
    let l2 = 256 << 10;
    let pool: Vec<WorkloadSpec> = ["mcf", "povray", "gobmk", "libquantum", "gcc"]
        .iter()
        .map(|n| {
            let mut s = spec2006::by_name(n, l2).unwrap();
            s.work /= 8;
            s
        })
        .collect();
    let cfg = ExperimentConfig::fast(777);
    let opts = |threads| symbio::sweep::SweepOptions {
        mix_size: 4,
        stride: 1,
        threads,
    };
    let serial = sweep_pool(cfg, &pool, &|| Box::new(WeightSortPolicy), opts(1));
    let parallel = sweep_pool(cfg, &pool, &|| Box::new(WeightSortPolicy), opts(4));
    assert_eq!(serial.results.len(), parallel.results.len());
    for (s, p) in serial.results.iter().zip(&parallel.results) {
        assert_eq!(s.user_cycles, p.user_cycles);
        assert_eq!(s.chosen, p.chosen);
    }
}
