//! Integration: allocation algorithms driven by real simulated signatures.

use symbio::prelude::*;

fn specs(names: &[&str]) -> Vec<WorkloadSpec> {
    let l2 = 256 << 10;
    names
        .iter()
        .map(|n| spec2006::by_name(n, l2).unwrap())
        .collect()
}

/// The canonical clear-cut case: two cache-hungry interferers (mcf,
/// omnetpp) and two compute-bound programs. Both graph policies and weight
/// sorting should group the interferers so they time-share.
#[test]
fn clear_cut_mix_groups_the_interferers() {
    let cfg = ExperimentConfig::scaled(77);
    let pipeline = Pipeline::new(cfg);
    let s = specs(&["mcf", "omnetpp", "povray", "sjeng"]);
    for make in [
        || Box::new(WeightSortPolicy) as Box<dyn AllocationPolicy>,
        || Box::new(WeightedInterferenceGraphPolicy::default()) as Box<dyn AllocationPolicy>,
    ] {
        let mut policy = make();
        let prof = pipeline.profile(&s, policy.as_mut());
        let m = &prof.winner;
        assert_eq!(
            m.core_of(0),
            m.core_of(1),
            "{}: mcf and omnetpp should time-share one core, got {:?}",
            policy.name(),
            m.partition_key(2)
        );
    }
}

#[test]
fn grouping_the_interferers_beats_worst_mapping() {
    // Physics check through the full pipeline plumbing: co-locating the
    // two interferers must visibly improve mcf over the worst mapping.
    let cfg = ExperimentConfig::scaled(78);
    let pipeline = Pipeline::new(cfg);
    let s = specs(&["mcf", "omnetpp", "povray", "sjeng"]);
    let grouped = Mapping::new(vec![0, 0, 1, 1]);
    let r = pipeline
        .evaluate_mix_with_choice(&s, &grouped, "oracle-grouped")
        .unwrap();
    let mcf = 0;
    assert!(
        r.improvement_vs_worst(mcf) > 0.05,
        "mcf should gain visibly from symbiotic placement, got {:.3}",
        r.improvement_vs_worst(mcf)
    );
}

#[test]
fn all_policies_produce_balanced_mappings_from_live_views() {
    let cfg = ExperimentConfig::fast(79);
    let pipeline = Pipeline::new(cfg);
    let s = specs(&["astar", "bzip2", "gcc", "gobmk"]);
    let policies: Vec<Box<dyn AllocationPolicy>> = vec![
        Box::new(WeightSortPolicy),
        Box::new(InterferenceGraphPolicy::default()),
        Box::new(WeightedInterferenceGraphPolicy::default()),
        Box::new(WeightedInterferenceGraphPolicy::paper_literal()),
        Box::new(PairwisePolicy::new()),
        Box::new(MissRateSortPolicy),
        Box::new(AffinityPolicy),
        Box::new(RandomPolicy::new(7)),
        Box::new(DefaultPolicy),
    ];
    for mut p in policies {
        let prof = pipeline.profile(&s, p.as_mut());
        assert_eq!(
            prof.winner.group_sizes(2),
            vec![2, 2],
            "{} must emit balanced mappings",
            p.name()
        );
    }
}

#[test]
fn two_phase_keeps_thread_subgroups_together_live() {
    let l2 = 256 << 10;
    let cfg = ExperimentConfig::fast(80);
    let pipeline = Pipeline::new(cfg);
    let mut a = parsec::ferret(l2);
    a.work /= 4;
    let mut b = parsec::swaptions(l2);
    b.work /= 4;
    let mut policy = TwoPhasePolicy::default();
    let prof = pipeline.profile_multithreaded(&[a, b], 4, &mut policy);
    assert_eq!(prof.winner.len(), 8);
    assert_eq!(prof.winner.group_sizes(2), vec![4, 4]);
    // Each app must span both cores (phase-1 subgroups split).
    for base in [0usize, 4] {
        let cores: std::collections::HashSet<_> =
            (0..4).map(|i| prof.winner.core_of(base + i)).collect();
        assert_eq!(cores.len(), 2, "app at tids {base}.. must span both cores");
    }
}
