//! Integration: virtualization layer behaviour.

use symbio::prelude::*;
use symbio_machine::Machine;

fn spec(name: &str) -> WorkloadSpec {
    spec2006::by_name(name, 256 << 10).unwrap()
}

#[test]
fn vm_execution_slower_than_native_same_seed() {
    let run = |cfg: MachineConfig| {
        let mut m = Machine::new(cfg.without_signature());
        let mut s = spec("gobmk");
        s.work /= 8;
        m.add_process(&s);
        m.start(Some(&Mapping::new(vec![0])));
        m.run_to_completion(100_000_000_000).procs[0].user_cycles
    };
    let native = run(MachineConfig::scaled_core2duo(91));
    let vm = run(MachineConfig::scaled_vm(91));
    assert!(vm > native, "vm {vm} vs native {native}");
}

#[test]
fn dom0_runs_but_never_gates_completion() {
    let mut m = Machine::new(MachineConfig::scaled_vm(92));
    // Full-length run so the benchmark spans several hypervisor quanta
    // and Dom0 gets scheduled in between.
    m.add_process(&spec("povray"));
    m.start(None);
    let out = m.run_to_completion(100_000_000_000);
    assert!(out.completed);
    assert_eq!(out.procs.len(), 1, "dom0 not reported as a gating process");
    // Dom0 did execute (its thread consumed cycles).
    let dom0 = m.thread(1);
    assert!(dom0.user_cycles > 0);
    assert!(!dom0.counts_for_completion);
}

#[test]
fn hypervisor_quantum_increases_switch_rate() {
    let switches = |cfg: MachineConfig| {
        let mut m = Machine::new(cfg);
        m.add_process(&spec("gobmk"));
        m.add_process(&spec("milc"));
        m.start(Some(&Mapping::new(vec![0, 0])));
        m.run_to_completion(100_000_000_000);
        m.switches()
    };
    let native = switches(MachineConfig::scaled_core2duo(93).without_signature());
    let mut vmcfg = MachineConfig::scaled_vm(93).without_signature();
    vmcfg.virt = Some(VirtConfig {
        dom0: false,
        ..VirtConfig::default_model()
    });
    let vm = switches(vmcfg);
    assert!(
        vm > native,
        "shorter hypervisor quantum must produce more switches ({vm} vs {native})"
    );
}

#[test]
fn per_vm_signatures_collected() {
    let mut m = Machine::new(MachineConfig::scaled_vm(94));
    m.add_process(&spec("mcf"));
    m.add_process(&spec("povray"));
    m.start(None);
    m.run_for(20_000_000);
    let views = m.query_views();
    assert_eq!(views.len(), 2, "only the VMs are visible to the policy");
    for v in &views {
        assert!(v.threads[0].samples > 0, "{} sampled", v.name);
    }
}
