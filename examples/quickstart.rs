//! Quickstart: evaluate one benchmark mix end-to-end.
//!
//! Builds the scaled Core 2 Duo, profiles a 4-benchmark mix under the
//! Bloom-filter signature unit, lets the weighted interference graph
//! algorithm choose a process→core mapping, measures every candidate
//! mapping, and prints the Table-1-style result.
//!
//! Run: `cargo run --release --example quickstart`

use symbio::prelude::*;

fn main() -> symbio::Result<()> {
    let cfg = ExperimentConfig::scaled(7);
    let l2 = cfg.machine.l2.size_bytes;

    // Pick four SPEC2006-like programs: two cache-hungry, two benign.
    let mut specs: Vec<WorkloadSpec> = Vec::new();
    for n in ["mcf", "omnetpp", "povray", "sjeng"] {
        specs.push(spec2006::by_name(n, l2)?);
    }

    let pipeline = Pipeline::new(cfg);
    let mut policy = WeightedInterferenceGraphPolicy::default();

    println!("profiling with the CBF signature unit...");
    let profile = pipeline.profile(&specs, &mut policy);
    println!(
        "majority mapping after {} invocations: {:?}",
        profile.invocations,
        profile.winner.partition_key(2)
    );

    println!("\nmeasuring all candidate mappings (signature off)...");
    let result = pipeline.evaluate_mix_with_choice(&specs, &profile.winner, policy.name())?;
    println!("{}", result.table());

    for (pid, name) in result.names.iter().enumerate() {
        println!(
            "{name:<10} improvement over worst mapping: {:>5.1}%",
            result.improvement_vs_worst(pid) * 100.0
        );
    }
    Ok(())
}
