//! VM placement: the Xen scenario of Section 4.2.
//!
//! Four single-benchmark VMs run on a virtualized dual-core host (Dom0,
//! hypervisor quantum, per-instruction tax). The control-domain policy
//! maps vcpus to cores using the per-VM footprint signatures and we
//! compare against native execution of the same mix.
//!
//! Run: `cargo run --release --example vm_placement`

use symbio::prelude::*;

fn main() -> symbio::Result<()> {
    let native_cfg = ExperimentConfig::scaled(13);
    let vm_cfg = native_cfg.virtualized();
    let l2 = native_cfg.machine.l2.size_bytes;
    let mut specs: Vec<WorkloadSpec> = Vec::new();
    for n in ["mcf", "omnetpp", "povray", "gobmk"] {
        specs.push(spec2006::by_name(n, l2)?);
    }

    for (label, cfg) in [("native", native_cfg), ("virtualized (Xen-like)", vm_cfg)] {
        let pipeline = Pipeline::new(cfg);
        let mut policy = WeightedInterferenceGraphPolicy::default();
        let r = pipeline.evaluate_mix(&specs, &mut policy)?;
        println!("== {label} ==");
        println!("{}", r.table());
        let mean: f64 = (0..specs.len())
            .map(|p| r.improvement_vs_worst(p))
            .sum::<f64>()
            / specs.len() as f64;
        println!(
            "mean improvement of chosen mapping vs worst: {:.1}%\n",
            mean * 100.0
        );
    }
    println!(
        "expected shape (paper Figs. 10 vs 11): virtualized improvements are\n\
         diluted by hypervisor overhead and Dom0 pollution, but stay positive\n\
         with the same relative trend across benchmarks."
    );
    Ok(())
}
