//! Consolidation advisor: given a set of workloads, which should share a
//! core?
//!
//! The scenario from the paper's introduction: an operator packs jobs onto
//! a dual-core box with a shared L2 and wants the placement that minimises
//! destructive cache interference. This example profiles the workloads,
//! prints each one's footprint signature summary, and recommends a
//! placement with the expected benefit.
//!
//! Run: `cargo run --release --example consolidation_advisor [bench ...]`
//! (default: bzip2 gcc mcf soplex)

use symbio::prelude::*;

fn main() -> symbio::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<String> = if args.is_empty() {
        ["bzip2", "gcc", "mcf", "soplex"]
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args
    };
    let cfg = ExperimentConfig::scaled(11);
    let l2 = cfg.machine.l2.size_bytes;
    let mut specs: Vec<WorkloadSpec> = Vec::new();
    for n in &names {
        specs.push(spec2006::by_name(n, l2)?);
    }

    let pipeline = Pipeline::new(cfg);
    let mut policy = WeightedInterferenceGraphPolicy::default();
    let profile = pipeline.profile(&specs, &mut policy);

    // Show what the signatures said.
    let mut m = Machine::new(cfg.machine);
    for s in &specs {
        m.add_process(s);
    }
    m.start(None);
    m.run_for(cfg.profile_cycles / 2);
    println!("signature summary (per-quantum RBV statistics):");
    println!(
        "{:<12}{:>12}{:>14}{:>12}",
        "workload", "occupancy", "miss rate", "samples"
    );
    for v in m.query_views() {
        let t = &v.threads[0];
        println!(
            "{:<12}{:>12.0}{:>13.1}%{:>12}",
            v.name,
            t.occupancy,
            t.l2_miss_rate * 100.0,
            t.samples
        );
    }

    println!(
        "\nrecommended placement: {:?}",
        profile.winner.partition_key(2)
    );
    for core in 0..2 {
        let group: Vec<&str> = (0..specs.len())
            .filter(|&t| profile.winner.core_of(t) == core)
            .map(|t| names[t].as_str())
            .collect();
        println!("  core {core}: {}", group.join(" + "));
    }

    // Quantify the advice against the alternatives.
    let result = pipeline.evaluate_mix_with_choice(&specs, &profile.winner, policy.name())?;
    println!("\nmeasured user cycles under every placement:");
    println!("{}", result.table());
    Ok(())
}
