//! Signature explorer: watch the footprint signature hardware in action.
//!
//! Runs a chosen benchmark (optionally with a co-runner) and dumps the
//! per-interval signature state: CBF occupancy vs ground-truth resident
//! lines vs miss counter, plus the per-core symbiosis/contested values at
//! each context switch — the raw material of Figures 2, 5 and 6.
//!
//! Run: `cargo run --release --example signature_explorer [bench [corunner]]`
//! (default: mcf libquantum)

use symbio::prelude::*;
use symbio_machine::Machine;

fn main() -> symbio::Result<()> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let a = args.first().map(String::as_str).unwrap_or("mcf");
    let b = args.get(1).map(String::as_str).unwrap_or("libquantum");
    let cfg = MachineConfig::scaled_core2duo(17);
    let l2 = cfg.l2.size_bytes;

    let mut m = Machine::new(cfg);
    m.add_process(&spec2006::by_name(a, l2)?);
    m.add_process(&spec2006::by_name(b, l2)?);
    m.start(None);

    println!("watching '{a}' (core 0) vs '{b}' (core 1) on the shared L2\n");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "t(M)", "occ(A)", "occ(B)", "residA", "residB", "sym(A,c1)", "cont(A,c1)"
    );
    for step in 0..12 {
        m.run_for(2_500_000);
        let views = m.query_views();
        let ta = &views[0].threads[0];
        let tb = &views[1].threads[0];
        println!(
            "{:>6.1} {:>10.0} {:>10.0} {:>10} {:>10} {:>12.0} {:>12.0}",
            (step + 1) as f64 * 2.5,
            ta.occupancy,
            tb.occupancy,
            m.memory().l2_resident_of(0),
            m.memory().l2_resident_of(1),
            ta.symbiosis.get(1).copied().unwrap_or(0.0),
            ta.overlap.get(1).copied().unwrap_or(0.0),
        );
    }
    let sig = m.signature().expect("signature on");
    println!(
        "\nfilter fill: core0 {:.2}, core1 {:.2}; global occupancy {} / {}",
        sig.core_filter(0).fill_ratio(),
        sig.core_filter(1).fill_ratio(),
        sig.global_occupancy(),
        sig.config().entries(),
    );
    println!("context-switch snapshots taken: {}", sig.snapshots());
    Ok(())
}
