//! Derive macros for the vendored `serde` stand-in.
//!
//! Hand-rolled over `proc_macro::TokenTree` (no `syn`/`quote` available
//! offline). Supports exactly the shapes this workspace derives:
//!
//! * named-field structs (fields serialize in declaration order);
//! * tuple structs (1-field newtypes are transparent, n-field become
//!   arrays);
//! * unit structs;
//! * enums with unit, tuple and struct variants, externally tagged like
//!   real serde (`"Variant"`, `{"Variant": inner}`).
//!
//! Generic type parameters are intentionally unsupported; deriving on a
//! generic type is a compile error pointing here.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    NamedStruct {
        name: String,
        fields: Vec<String>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse(input);
    gen_serialize(&shape)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse(input);
    gen_deserialize(&shape)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Shape {
    let mut it = input.into_iter().peekable();
    loop {
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Outer attribute: consume the bracket group.
                it.next();
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                // Visibility, possibly `pub(crate)`.
                if let Some(TokenTree::Group(g)) = it.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        it.next();
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                return parse_struct(&mut it);
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                return parse_enum(&mut it);
            }
            Some(_) => {}
            None => panic!("derive input contained no struct or enum"),
        }
    }
}

fn parse_struct(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Shape {
    let name = expect_ident(it.next());
    match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::NamedStruct {
            name,
            fields: parse_named_fields(g.stream()),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct {
                name,
                arity: count_tuple_fields(g.stream()),
            }
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct { name },
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde stand-in derive does not support generic type `{name}`")
        }
        other => panic!("unexpected token after struct name `{name}`: {other:?}"),
    }
}

fn parse_enum(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) -> Shape {
    let name = expect_ident(it.next());
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde stand-in derive does not support generic type `{name}`")
        }
        other => panic!("expected enum body for `{name}`, got {other:?}"),
    };
    let mut variants = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        skip_attributes(&mut it);
        let vname = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, got {other:?}"),
        };
        let kind = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = count_tuple_fields(g.stream());
                it.next();
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                it.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        variants.push(Variant { name: vname, kind });
        // Consume a trailing comma if present.
        if let Some(TokenTree::Punct(p)) = it.peek() {
            if p.as_char() == ',' {
                it.next();
            }
        }
    }
    Shape::Enum { name, variants }
}

fn skip_attributes(it: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    while let Some(TokenTree::Punct(p)) = it.peek() {
        if p.as_char() != '#' {
            break;
        }
        it.next(); // '#'
        it.next(); // the [...] group
    }
}

/// Field names of a `{ name: Type, ... }` body, skipping attributes,
/// visibility and the type tokens (types can nest `<...>` with commas).
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut it = body.into_iter().peekable();
    loop {
        skip_attributes(&mut it);
        let mut name = match it.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, got {other:?}"),
        };
        if name == "pub" {
            if let Some(TokenTree::Group(g)) = it.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    it.next();
                }
            }
            name = expect_ident(it.next());
        }
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        // Skip the type, tracking angle-bracket depth so commas inside
        // `Vec<(u64, Pattern)>`-style types do not split fields.
        let mut depth: i64 = 0;
        let mut prev = ' ';
        for tt in it.by_ref() {
            match &tt {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == '<' {
                        depth += 1;
                    } else if c == '>' && prev != '-' {
                        depth -= 1;
                    } else if c == ',' && depth == 0 {
                        break;
                    }
                    prev = c;
                }
                _ => prev = ' ',
            }
        }
    }
    fields
}

/// Number of fields in a tuple-struct / tuple-variant body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut depth: i64 = 0;
    let mut prev = ' ';
    let mut commas = 0usize;
    let mut any = false;
    for tt in body {
        any = true;
        if let TokenTree::Punct(p) = &tt {
            let c = p.as_char();
            if c == '<' {
                depth += 1;
            } else if c == '>' && prev != '-' {
                depth -= 1;
            } else if c == ',' && depth == 0 {
                commas += 1;
            }
            prev = c;
        } else {
            prev = ' ';
        }
    }
    if !any {
        return 0;
    }
    // A trailing comma does not add a field; detect via prev.
    if prev == ',' {
        commas
    } else {
        commas + 1
    }
}

fn expect_ident(tt: Option<TokenTree>) -> String {
    match tt {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected identifier, got {other:?}"),
    }
}

// ------------------------------------------------------------- generation

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::NamedStruct { name, fields } => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Object(::std::vec::Vec::from([{}]))\n\
                     }}\n\
                 }}",
                pairs.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        Shape::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec::Vec::from([{}]))\n\
                     }}\n\
                 }}",
                elems.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vn} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{vn}\")),"
                        ),
                        VariantKind::Tuple(1) => format!(
                            "{name}::{vn}(f0) => ::serde::Value::Object(\
                             ::std::vec::Vec::from([(\
                             ::std::string::String::from(\"{vn}\"), \
                             ::serde::Serialize::to_value(f0))])),"
                        ),
                        VariantKind::Tuple(n) => {
                            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(\
                                 ::std::vec::Vec::from([(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Array(::std::vec::Vec::from([{}])))])),",
                                binds.join(", "),
                                elems.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binds = fields.join(", ");
                            let pairs: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(::std::string::String::from(\"{f}\"), \
                                         ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(\
                                 ::std::vec::Vec::from([(\
                                 ::std::string::String::from(\"{vn}\"), \
                                 ::serde::Value::Object(::std::vec::Vec::from([{}])))])),",
                                pairs.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    let body = match shape {
        Shape::NamedStruct { name, fields } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("{f}: ::serde::Deserialize::from_value(v.expect_field(\"{f}\")?)?")
                })
                .collect();
            format!(
                "::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::TupleStruct { name, arity: 1 } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::TupleStruct { name, arity } => {
            let elems: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                .collect();
            format!(
                "let a = v.expect_array({arity})?;\n\
                 ::std::result::Result::Ok({name}({}))",
                elems.join(", ")
            )
        }
        Shape::UnitStruct { name } => format!("::std::result::Result::Ok({name})"),
        Shape::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| format!("\"{0}\" => ::std::result::Result::Ok({name}::{0}),", v.name))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.kind {
                        VariantKind::Unit => None,
                        VariantKind::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                             ::serde::Deserialize::from_value(inner)?)),"
                        )),
                        VariantKind::Tuple(n) => {
                            let elems: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let a = inner.expect_array({n})?; \
                                 ::std::result::Result::Ok({name}::{vn}({})) }}",
                                elems.join(", ")
                            ))
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(\
                                         inner.expect_field(\"{f}\")?)?"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => ::std::result::Result::Ok({name}::{vn} {{ {} }}),",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(s) = v {{\n\
                     return match s.as_str() {{\n{unit}\n\
                         other => ::std::result::Result::Err(::serde::DeError::msg(\
                             format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }};\n\
                 }}\n\
                 let (tag, inner) = v.expect_enum()?;\n\
                 let _ = inner;\n\
                 match tag {{\n{data}\n\
                     other => ::std::result::Result::Err(::serde::DeError::msg(\
                         format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                 }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    let name = match shape {
        Shape::NamedStruct { name, .. }
        | Shape::TupleStruct { name, .. }
        | Shape::UnitStruct { name }
        | Shape::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
