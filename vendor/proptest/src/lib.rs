//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!` / `prop_assert_eq!`, `any::<T>()`,
//! integer-range strategies, and `collection::vec`. Unlike real proptest
//! there is no shrinking — a failing case reports its seed and iteration
//! so it can be reproduced (the stream is deterministic per test name).

/// Number of cases each property runs.
pub const CASES: u32 = 96;

/// Deterministic splitmix64 stream used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Seed a per-test stream from the test's name, so each property gets a
/// stable but distinct sequence of cases.
pub fn test_rng(name: &str) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    TestRng { state: h }
}

/// A generator of test values.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Strategy for "any value of T" (`any::<T>()`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Produce the full-domain strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Strategy for Any<u64> {
    type Value = u64;
    fn sample(&self, rng: &mut TestRng) -> u64 {
        // Mix extremes in so boundary behaviour gets exercised without
        // shrinking support.
        match rng.below(16) {
            0 => 0,
            1 => u64::MAX,
            2 => 1,
            _ => rng.next_u64(),
        }
    }
}

impl Strategy for Any<u32> {
    type Value = u32;
    fn sample(&self, rng: &mut TestRng) -> u32 {
        match rng.below(16) {
            0 => 0,
            1 => u32::MAX,
            _ => (rng.next_u64() >> 32) as u32,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy yielding vectors with element strategy `S` and a length
    /// drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: std::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, size_range)`.
    pub fn vec<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end {
                self.len.start
            } else {
                self.len.start + rng.below((self.len.end - self.len.start) as u64) as usize
            };
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The common imports property tests pull in.
pub mod prelude {
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Define property tests: each `fn name(arg in strategy, ...)` body runs
/// [`CASES`] times over deterministically drawn inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let mut rng = $crate::test_rng(stringify!($name));
                for case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!(
                            "property `{}` failed on case {case}: {msg}",
                            stringify!($name)
                        );
                    }
                }
            }
        )*
    };
}

/// Property assertion; fails the current case with a message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Property equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err(format!(
                "assertion failed: `{} == {}`\n  left: {l:?}\n right: {r:?}",
                stringify!($left),
                stringify!($right),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u32..17, n in 0usize..9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(n < 9);
        }

        #[test]
        fn vectors_respect_length(v in crate::collection::vec(0usize..4, 0..6)) {
            prop_assert!(v.len() < 6);
            for x in v {
                prop_assert!(x < 4, "element {x} out of range");
            }
        }

        #[test]
        fn any_u64_hits_extremes(x in any::<u64>()) {
            // Smoke: the draw itself is the assertion target.
            prop_assert_eq!(x, x);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::test_rng("alpha");
        let mut b = crate::test_rng("alpha");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("beta");
        assert_ne!(crate::test_rng("alpha").next_u64(), c.next_u64());
    }
}
