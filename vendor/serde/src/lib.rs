//! Offline stand-in for `serde`.
//!
//! The build container has no network access to crates.io, so the
//! workspace vendors the *shape* of the serde API it actually uses: the
//! `Serialize` / `Deserialize` traits, their derive macros, and a JSON
//! value tree (`Value`) that `serde_json` (also vendored) renders and
//! parses. The data model is deliberately JSON-centric — every type
//! serializes straight to a [`Value`] — which is all this workspace needs
//! for its experiment artifacts and round-trip tests.
//!
//! Struct fields serialize in declaration order, enums use serde's
//! external tagging (`"Variant"` / `{"Variant": ...}`), and newtype
//! structs are transparent, matching real serde's JSON output for the
//! shapes used in this repository.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// A JSON-like value tree: the universal serialization target.
///
/// Objects preserve insertion order (struct declaration order), so output
/// is deterministic and stable across runs — a property the measurement
/// memoization cache and the byte-identical-artifact tests rely on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer (JSON number).
    U64(u64),
    /// Negative integer (JSON number).
    I64(i64),
    /// Floating point (JSON number).
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from anything displayable.
    pub fn msg(m: impl std::fmt::Display) -> Self {
        DeError(m.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

impl Value {
    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Object member lookup, erroring when absent (derive helper).
    pub fn expect_field(&self, key: &str) -> Result<&Value, DeError> {
        self.get(key)
            .ok_or_else(|| DeError(format!("missing field `{key}` in {self:?}")))
    }

    /// Array of exactly `n` elements (derive helper for tuple shapes).
    pub fn expect_array(&self, n: usize) -> Result<&[Value], DeError> {
        match self {
            Value::Array(a) if a.len() == n => Ok(a),
            other => Err(DeError(format!(
                "expected {n}-element array, got {other:?}"
            ))),
        }
    }

    /// Externally-tagged enum payload: the single `(tag, value)` member of
    /// a one-entry object (derive helper).
    pub fn expect_enum(&self) -> Result<(&str, &Value), DeError> {
        match self {
            Value::Object(pairs) if pairs.len() == 1 => Ok((pairs[0].0.as_str(), &pairs[0].1)),
            other => Err(DeError(format!(
                "expected single-variant object, got {other:?}"
            ))),
        }
    }
}

/// Types that can render themselves as a [`Value`].
pub trait Serialize {
    /// Convert to the JSON value tree.
    fn to_value(&self) -> Value;
}

/// Types that can rebuild themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from the JSON value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = match v {
                    Value::U64(n) => *n,
                    Value::I64(n) if *n >= 0 => *n as u64,
                    other => return Err(DeError(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(raw).map_err(|_| DeError(format!(
                    "{raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw: i64 = match v {
                    Value::I64(n) => *n,
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError(format!("{n} overflows i64")))?,
                    other => return Err(DeError(format!(
                        "expected integer, got {other:?}"
                    ))),
                };
                <$t>::try_from(raw).map_err(|_| DeError(format!(
                    "{raw} out of range for {}", stringify!($t)
                )))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    other => Err(DeError(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(a) => a.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v.expect_array(2)?;
        Ok((A::from_value(&a[0])?, B::from_value(&a[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let a = v.expect_array(3)?;
        Ok((
            A::from_value(&a[0])?,
            B::from_value(&a[1])?,
            C::from_value(&a[2])?,
        ))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError(format!("expected object, got {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys so serialized output is deterministic.
        let mut pairs: Vec<_> = self.iter().collect();
        pairs.sort_by(|a, b| a.0.cmp(b.0));
        Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn option_roundtrip() {
        let some: Option<u64> = Some(7);
        let none: Option<u64> = None;
        assert_eq!(
            Option::<u64>::from_value(&some.to_value()).unwrap(),
            Some(7)
        );
        assert_eq!(Option::<u64>::from_value(&none.to_value()).unwrap(), None);
    }

    #[test]
    fn tuple_roundtrip() {
        let t = (3u32, 0.5f64);
        let back: (u32, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn signed_roundtrip() {
        for n in [-5i64, 0, 5] {
            let back: i64 = Deserialize::from_value(&n.to_value()).unwrap();
            assert_eq!(back, n);
        }
    }
}
