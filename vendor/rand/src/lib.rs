//! Offline stand-in for `rand`.
//!
//! Provides the small seeded-deterministic surface this workspace uses:
//! `rngs::StdRng::seed_from_u64`, the [`SeedableRng`] and [`RngExt`]
//! traits, and `random()` for the primitive types drawn in tests. The
//! generator is splitmix64 — statistically fine for test-vector
//! generation, never used for anything cryptographic.

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Drawing values, mirroring `rand`'s `Rng::random`.
pub trait RngExt {
    /// Next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draw a value of an inferable primitive type.
    fn random<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

/// Types drawable from a raw 64-bit stream.
pub trait FromRng {
    /// Produce one value from the generator.
    fn from_rng<R: RngExt>(rng: &mut R) -> Self;
}

impl FromRng for u64 {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl FromRng for u32 {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl FromRng for bool {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngExt>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngExt, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngExt for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rngs::StdRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let x: u64 = a.random();
        let y: u64 = b.random();
        assert_ne!(x, y);
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
