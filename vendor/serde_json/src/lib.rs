//! Offline stand-in for `serde_json`.
//!
//! Renders and parses the vendored [`serde::Value`] tree. Output is
//! deterministic: object members keep insertion order, floats print via
//! Rust's shortest-roundtrip `{}` formatting, and integers print exactly.
//! This matters because the sweep-engine memoization tests compare
//! artifacts byte-for-byte.

pub use serde::Value;

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Error produced by serialization or deserialization.
#[derive(Debug)]
pub struct Error(String);

impl Error {
    fn new(m: impl fmt::Display) -> Self {
        Error(m.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error(e.0)
    }
}

impl From<Error> for std::io::Error {
    fn from(e: Error) -> Self {
        std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Specialized result type.
pub type Result<T> = std::result::Result<T, Error>;

// ------------------------------------------------------------- rendering

/// Serialize to a compact single-line JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty-printed (2-space indented) JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serialize into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuild a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::from_value(&value)?)
}

/// Parse a JSON string into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse(s)?;
    Ok(T::from_value(&v)?)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => write_f64(out, *x),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        let s = format!("{x}");
        out.push_str(&s);
        // Keep the number recognizably floating-point on re-parse.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // Real serde_json refuses non-finite floats; emitting null keeps
        // artifact writing infallible, which the reporting layer assumes.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.string()?)),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            pairs.push((key, val));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-walk UTF-8: back up and take the full char.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new(format!("invalid number at byte {start}")));
        }
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid float `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
                .and_then(|n| {
                    i64::try_from(n)
                        .map(|n| Value::I64(-n))
                        .map_err(|_| Error::new(format!("integer `{text}` overflows i64")))
                })
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid integer `{text}`")))
        }
    }
}

// ----------------------------------------------------------------- json!

/// Build a [`Value`] from JSON-like syntax, interpolating Rust
/// expressions (which must implement `serde::Serialize`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([]) => { $crate::Value::Array(::std::vec::Vec::new()) };
    ([ $($tt:tt)+ ]) => {{
        #[allow(clippy::vec_init_then_push)]
        let items = {
            let mut items: ::std::vec::Vec<$crate::Value> = ::std::vec::Vec::new();
            $crate::json_items!(items ($($tt)+));
            items
        };
        $crate::Value::Array(items)
    }};
    ({}) => { $crate::Value::Object(::std::vec::Vec::new()) };
    ({ $($tt:tt)+ }) => {{
        #[allow(clippy::vec_init_then_push)]
        let pairs = {
            let mut pairs: ::std::vec::Vec<(::std::string::String, $crate::Value)> =
                ::std::vec::Vec::new();
            $crate::json_pairs!(pairs ($($tt)+));
            pairs
        };
        $crate::Value::Object(pairs)
    }};
    ($other:expr) => {
        ::serde::Serialize::to_value(&$other)
    };
}

/// Internal muncher for `json!` object bodies: consumes one
/// `key: value` entry per step. Values may be `null`, nested
/// objects/arrays, or arbitrary Rust expressions (which stop at the
/// entry's top-level comma).
#[doc(hidden)]
#[macro_export]
macro_rules! json_pairs {
    ($pairs:ident ()) => {};
    ($pairs:ident ($key:tt : null $(, $($rest:tt)*)?)) => {
        $pairs.push(($key.to_string(), $crate::Value::Null));
        $crate::json_pairs!($pairs ($($($rest)*)?));
    };
    ($pairs:ident ($key:tt : { $($inner:tt)* } $(, $($rest:tt)*)?)) => {
        $pairs.push(($key.to_string(), $crate::json!({ $($inner)* })));
        $crate::json_pairs!($pairs ($($($rest)*)?));
    };
    ($pairs:ident ($key:tt : [ $($inner:tt)* ] $(, $($rest:tt)*)?)) => {
        $pairs.push(($key.to_string(), $crate::json!([ $($inner)* ])));
        $crate::json_pairs!($pairs ($($($rest)*)?));
    };
    ($pairs:ident ($key:tt : $value:expr , $($rest:tt)*)) => {
        $pairs.push(($key.to_string(), ::serde::Serialize::to_value(&$value)));
        $crate::json_pairs!($pairs ($($rest)*));
    };
    ($pairs:ident ($key:tt : $value:expr)) => {
        $pairs.push(($key.to_string(), ::serde::Serialize::to_value(&$value)));
    };
}

/// Internal muncher for `json!` array bodies (same value grammar as
/// [`json_pairs!`]).
#[doc(hidden)]
#[macro_export]
macro_rules! json_items {
    ($items:ident ()) => {};
    ($items:ident (null $(, $($rest:tt)*)?)) => {
        $items.push($crate::Value::Null);
        $crate::json_items!($items ($($($rest)*)?));
    };
    ($items:ident ({ $($inner:tt)* } $(, $($rest:tt)*)?)) => {
        $items.push($crate::json!({ $($inner)* }));
        $crate::json_items!($items ($($($rest)*)?));
    };
    ($items:ident ([ $($inner:tt)* ] $(, $($rest:tt)*)?)) => {
        $items.push($crate::json!([ $($inner)* ]));
        $crate::json_items!($items ($($($rest)*)?));
    };
    ($items:ident ($value:expr , $($rest:tt)*)) => {
        $items.push(::serde::Serialize::to_value(&$value));
        $crate::json_items!($items ($($rest)*));
    };
    ($items:ident ($value:expr)) => {
        $items.push(::serde::Serialize::to_value(&$value));
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = json!({
            "name": "fig",
            "items": [1, 2, 3],
            "nested": {"ok": true, "ratio": 0.5},
            "none": null,
        });
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn float_keeps_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&0.25f64).unwrap(), "0.25");
    }

    #[test]
    fn negative_integers() {
        let back: i64 = from_str("-42").unwrap();
        assert_eq!(back, -42);
    }

    #[test]
    fn string_escapes() {
        let s = "line\n\"quoted\"\ttab";
        let rendered = to_string(&s).unwrap();
        let back: String = from_str(&rendered).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn interpolation() {
        let n = 7u64;
        let v = json!({"n": n, "list": [n, 8]});
        assert_eq!(to_string(&v).unwrap(), r#"{"n":7,"list":[7,8]}"#);
    }
}
