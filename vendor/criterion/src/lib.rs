//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock harness exposing the API the workspace's benches
//! use: `Criterion::bench_function`, `benchmark_group` (+ `sample_size`,
//! `finish`), `Bencher::iter` / `iter_with_setup`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. No statistics beyond
//! mean-per-iteration; good enough to keep benches compiling and give a
//! rough number offline.

use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Override the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark under `id`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(id, self.sample_size, &mut f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named group; benches report as `group/id`.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Override samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    /// Close the group (reporting already happened per-bench).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; collects iteration timings.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` over a batch of iterations.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..BATCH {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += BATCH;
    }

    /// Time `routine` on fresh input from `setup`; setup time excluded.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..BATCH_WITH_SETUP {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

const BATCH: u64 = 64;
const BATCH_WITH_SETUP: u64 = 4;

fn run_bench<F>(id: &str, samples: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up pass, then timed samples.
    let mut warm = Bencher::default();
    f(&mut warm);
    let mut total = Duration::ZERO;
    let mut iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher::default();
        f(&mut b);
        total += b.elapsed;
        iters += b.iters;
    }
    if iters == 0 {
        println!("bench {id}: no iterations recorded");
        return;
    }
    let per_iter = total.as_nanos() / u128::from(iters);
    println!("bench {id}: {per_iter} ns/iter ({iters} iters)");
}

/// Declare a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        c.sample_size(2);
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_runs_with_setup() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        let mut seen = 0u64;
        g.bench_function("setup", |b| b.iter_with_setup(|| 3u64, |x| seen += x));
        g.finish();
        assert!(seen > 0);
    }
}
